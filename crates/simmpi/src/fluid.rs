//! Fluid (flow-level) program execution: the MPI semantics of
//! [`World`](crate::world::World) idealized over [`simnet::fluid::FluidSim`].
//!
//! [`FluidWorld`] interprets the same per-rank [`Op`] programs as the
//! packet-level executor, but every payload travels as a max-min fair
//! fluid flow instead of a packet train, and simulated time advances only
//! at flow start/finish boundaries. The protocol is deliberately the
//! *deterministic skeleton* of the packet world:
//!
//! * a [`Op::Transfer`] posts all receives and issues all sends at the
//!   instant the op starts (no per-message CPU stagger — the sender's
//!   serialized send calls are charged as one `sends × send_overhead`
//!   CPU interval the op also waits on);
//! * **eager** payloads (≤ `eager_threshold`) start flowing at send issue
//!   and the blocking send completes with the CPU charge, exactly like
//!   the packet world's buffered short-message path;
//! * **rendezvous** payloads start flowing when both the send has issued
//!   and a matching receive has posted (the RTS/CTS round-trip itself is
//!   elided), and the blocking send completes when the flow finishes;
//! * a receive completes at `max(arrival, post) + recv_overhead`, where
//!   arrival is the flow's finish plus the route's one-way latency;
//! * messages between a rank pair match strictly in issue/post order
//!   (MPI non-overtaking), and [`Op::Barrier`] releases every rank at the
//!   last arrival;
//! * there is **no jitter and no OS hiccup** — the fluid tier answers
//!   "what does bandwidth sharing alone predict", so a run is a pure
//!   function of the program and the fabric.
//!
//! What the idealization drops relative to the packet engine — per-MTU
//! framing bytes, control round-trips, serialized receiver overheads,
//! TCP loss recovery — is exactly the per-scenario error band the
//! scenario layer's `fluid_validation` test documents.

use crate::config::MpiConfig;
use crate::ops::{Op, Rank};
use crate::world::{RunInterrupt, RunResult};
use simnet::fluid::{FluidCompletion, FluidSim};
use simnet::guard::RunGuard;
use simnet::ids::HostId;
use simnet::obs::Recorder;
use simnet::time::SimTime;
use simnet::topology::Topology;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Relative finish-coalescing window handed to [`FluidSim`]: flow finishes
/// within 1 % of the earliest one complete under a single rate
/// recomputation, stamped at their exact projected instants. The solver
/// slack errs completion times late by at most 1 % — small next to the
/// packet-vs-fluid model error bands this tier documents — and is what
/// keeps the staggered ECMP finish waves of 1k–4k-host fabrics from
/// costing one full max-min recomputation each (measured: ~10× fewer
/// recomputations on the 1024-host fat-tree all-to-all).
const FINISH_WINDOW_REL: f64 = 1e-2;

/// One pending point-to-point message (identified by its index in
/// `FluidWorld::transfers`).
#[derive(Debug)]
struct Transfer {
    src: Rank,
    dst: Rank,
    bytes: u64,
    eager: bool,
    /// Receive post instant; NaN until a receive has matched.
    post_ns: f64,
    /// Data arrival instant at the receiver (flow finish + route
    /// latency); NaN until the flow finishes.
    arrival_ns: f64,
}

/// Unmatched sends/receives between one ordered rank pair, matched FIFO.
#[derive(Debug, Default)]
struct PairQueue {
    /// Issued sends (transfer ids) with no matching receive yet.
    sends: VecDeque<u64>,
    /// Posted receives (post instants) with no matching send yet.
    recvs: VecDeque<f64>,
}

/// A heap event: something a rank waits on resolves at `at_ns`.
#[derive(Debug, Clone, Copy)]
struct Pending {
    at_bits: u64,
    seq: u64,
    rank: Rank,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.at_bits == other.at_bits && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via reversal: earliest time, then insertion order.
        (other.at_bits, other.seq).cmp(&(self.at_bits, self.seq))
    }
}

struct RankState {
    program: Vec<Op>,
    pc: usize,
    outstanding: usize,
    finished: Option<f64>,
}

/// A set of MPI ranks mapped onto fabric hosts, executed fluidly.
///
/// Unlike the packet [`World`](crate::world::World), a `FluidWorld`
/// borrows its [`Topology`] (no simulator state to own) and every
/// [`FluidWorld::run`] is independent: deterministic, jitter-free, always
/// starting at simulated time zero. The scenario layer's `backend =
/// "fluid"` tier runs each measurement cell through one of these.
pub struct FluidWorld<'a> {
    topo: &'a Topology,
    hosts: Vec<HostId>,
    mpi: MpiConfig,
    n: usize,
}

struct Interp<'w, 'a, R: Recorder> {
    topo: &'a Topology,
    hosts: &'w [HostId],
    mpi: &'w MpiConfig,
    n: usize,
    net: FluidSim<'a, R>,
    ranks: Vec<RankState>,
    transfers: Vec<Transfer>,
    pair_queues: HashMap<u64, PairQueue>,
    heap: BinaryHeap<Pending>,
    next_seq: u64,
    barrier_waiting: usize,
    unfinished: usize,
    finish_buf: Vec<FluidCompletion>,
}

impl<'a> FluidWorld<'a> {
    /// Builds a fluid world of `hosts.len()` ranks over a built topology.
    ///
    /// # Panics
    /// Panics if `hosts` is empty, repeats a host, or references hosts
    /// outside the topology.
    pub fn new(topo: &'a Topology, hosts: Vec<HostId>, mpi: MpiConfig) -> Self {
        assert!(!hosts.is_empty(), "a world needs at least one rank");
        let mut seen = vec![false; topo.n_hosts];
        for &h in &hosts {
            assert!(h.index() < topo.n_hosts, "host outside topology");
            assert!(!seen[h.index()], "one rank per host");
            seen[h.index()] = true;
        }
        let n = hosts.len();
        Self {
            topo,
            hosts,
            mpi,
            n,
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n
    }

    /// MPI-layer configuration in force (jitter/hiccup fields ignored).
    pub fn mpi_config(&self) -> &MpiConfig {
        &self.mpi
    }

    /// Runs one program per rank to completion and returns per-rank
    /// finish times, with `recorder` receiving link-utilization samples
    /// integrated from the fluid rates.
    ///
    /// # Panics
    /// Panics if `programs.len()` differs from the rank count or the
    /// programs deadlock (a rank blocked with no flow or event pending).
    pub fn run_with<R: Recorder>(&self, programs: Vec<Vec<Op>>, recorder: R) -> (RunResult, R) {
        let (result, recorder) = self.try_run_with(programs, recorder, RunGuard::unlimited());
        match result {
            Ok(r) => (r, recorder),
            Err(interrupt) => panic!("{interrupt}"),
        }
    }

    /// Like [`FluidWorld::run_with`], but supervised: `guard` limits are
    /// polled at the fluid engine's preemption points (each advance
    /// iteration and each driver-loop boundary), and interruptions come
    /// back as values — a tripped limit as [`RunInterrupt::Guard`], a
    /// genuine stall (no event and no flow pending while ranks still
    /// wait) as [`RunInterrupt::Deadlocked`]. The recorder is returned
    /// either way so partial telemetry can still be harvested.
    ///
    /// # Panics
    /// Panics if `programs.len()` differs from the rank count.
    pub fn try_run_with<R: Recorder>(
        &self,
        programs: Vec<Vec<Op>>,
        recorder: R,
        guard: RunGuard,
    ) -> (Result<RunResult, RunInterrupt>, R) {
        assert_eq!(programs.len(), self.n, "one program per rank");
        let mut net = FluidSim::with_recorder(self.topo, recorder);
        net.set_finish_window(FINISH_WINDOW_REL);
        net.set_guard(guard);
        let mut interp = Interp {
            topo: self.topo,
            hosts: &self.hosts,
            mpi: &self.mpi,
            n: self.n,
            net,
            ranks: programs
                .into_iter()
                .map(|program| RankState {
                    program,
                    pc: 0,
                    outstanding: 0,
                    finished: None,
                })
                .collect(),
            transfers: Vec::new(),
            pair_queues: HashMap::new(),
            heap: BinaryHeap::new(),
            next_seq: 0,
            barrier_waiting: 0,
            unfinished: self.n,
            finish_buf: Vec::new(),
        };
        let result = interp.execute();
        (result, interp.net.into_recorder())
    }

    /// [`FluidWorld::try_run_with`] without telemetry.
    pub fn try_run(
        &self,
        programs: Vec<Vec<Op>>,
        guard: RunGuard,
    ) -> Result<RunResult, RunInterrupt> {
        self.try_run_with(programs, simnet::obs::NoopRecorder, guard)
            .0
    }

    /// [`FluidWorld::run_with`] without telemetry.
    pub fn run(&self, programs: Vec<Vec<Op>>) -> RunResult {
        self.run_with(programs, simnet::obs::NoopRecorder).0
    }
}

impl<R: Recorder> Interp<'_, '_, R> {
    fn execute(&mut self) -> Result<RunResult, RunInterrupt> {
        for rank in 0..self.n {
            self.issue_current_op(rank, 0.0);
        }
        while self.unfinished > 0 {
            // Poll the guard at the driver boundary too: a pure-event
            // phase (no fluid in flight) must still honor deadlines and
            // cancellation.
            if let Some(stop) = self.net.guard_stop() {
                return Err(RunInterrupt::Guard(stop));
            }
            let t_event = self.heap.peek().map(|p| f64::from_bits(p.at_bits));
            let t_flow = self.net.next_finish_ns();
            let t = match (t_event, t_flow) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    let ranks: Vec<usize> = self
                        .ranks
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.finished.is_none())
                        .map(|(i, _)| i)
                        .collect();
                    let detail = format!("ranks {ranks:?} blocked with no pending events or flows");
                    return Err(RunInterrupt::Deadlocked { ranks, detail });
                }
            };
            // When the next boundary is a flow finish, advance through its
            // whole coalescing window (clamped to the next rank event) so
            // the engine can batch the finish wave under one rate
            // recomputation. Rank events stay exact boundaries.
            let t_adv = match (t_event, t_flow) {
                (event, Some(flow)) if flow <= event.unwrap_or(f64::INFINITY) => {
                    (flow * (1.0 + FINISH_WINDOW_REL)).min(event.unwrap_or(f64::INFINITY))
                }
                _ => t,
            }
            .max(self.net.now_ns());
            let mut finishes = std::mem::take(&mut self.finish_buf);
            finishes.clear();
            self.net.advance_to(t_adv, &mut finishes);
            // Windowed finishes carry their own (rounded) stamps, all
            // within [t, t_adv]; clamping to t_adv keeps cascaded events
            // from ever being scheduled fractionally past the clock.
            for c in &finishes {
                self.on_flow_finish(c.tag, (c.at.0 as f64).clamp(t, t_adv));
            }
            self.finish_buf = finishes;
            while let Some(p) = self.heap.peek() {
                if f64::from_bits(p.at_bits) > t_adv {
                    break;
                }
                let p = self.heap.pop().unwrap();
                self.complete_part(p.rank, f64::from_bits(p.at_bits));
            }
        }
        Ok(RunResult {
            start: SimTime(0),
            finished: self
                .ranks
                .iter()
                .map(|r| SimTime(r.finished.unwrap().round() as u64))
                .collect(),
        })
    }

    fn schedule(&mut self, rank: Rank, at_ns: f64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Pending {
            at_bits: at_ns.to_bits(),
            seq,
            rank,
        });
    }

    fn pair_key(&self, src: Rank, dst: Rank) -> u64 {
        (src * self.n + dst) as u64
    }

    /// One-way wire latency of the src → dst route in nanoseconds.
    fn route_latency(&self, src: Rank, dst: Rank) -> f64 {
        self.topo
            .route(self.hosts[src], self.hosts[dst])
            .iter()
            .map(|tx| self.topo.tx_params[tx.index()].latency_ns)
            .sum::<u64>() as f64
    }

    fn issue_current_op(&mut self, rank: Rank, now_ns: f64) {
        loop {
            let state = &self.ranks[rank];
            if state.pc >= state.program.len() {
                self.ranks[rank].finished = Some(now_ns);
                self.unfinished -= 1;
                return;
            }
            let op = state.program[state.pc].clone();
            match op {
                Op::Transfer { sends, recvs } => {
                    if sends.is_empty() && recvs.is_empty() {
                        self.ranks[rank].pc += 1;
                        continue;
                    }
                    let rendezvous = sends
                        .iter()
                        .filter(|(_, b)| *b > self.mpi.eager_threshold)
                        .count();
                    let cpu_parts = usize::from(!sends.is_empty());
                    self.ranks[rank].outstanding = cpu_parts + rendezvous + recvs.len();
                    // Receives post first (instantaneous state change) so a
                    // sendrecv against the same peer cannot deadlock.
                    for from in recvs {
                        assert_ne!(from, rank, "self-receives are local copies");
                        self.post_recv(from, rank, now_ns);
                    }
                    if cpu_parts > 0 {
                        let cpu_ns = sends.len() as u64 * self.mpi.send_overhead_ns;
                        self.schedule(rank, now_ns + cpu_ns as f64);
                    }
                    for (to, bytes) in sends {
                        assert_ne!(to, rank, "self-sends are local copies");
                        self.issue_send(rank, to, bytes, now_ns);
                    }
                    return;
                }
                Op::Barrier => {
                    self.ranks[rank].outstanding = 1;
                    self.barrier_waiting += 1;
                    if self.barrier_waiting == self.n {
                        self.barrier_waiting = 0;
                        for r in 0..self.n {
                            self.schedule(r, now_ns);
                        }
                    }
                    return;
                }
            }
        }
    }

    fn issue_send(&mut self, src: Rank, dst: Rank, bytes: u64, now_ns: f64) {
        let tid = self.transfers.len() as u64;
        let eager = bytes <= self.mpi.eager_threshold;
        let mut tr = Transfer {
            src,
            dst,
            bytes,
            eager,
            post_ns: f64::NAN,
            arrival_ns: f64::NAN,
        };
        if eager && bytes == 0 {
            // Zero-byte message: nothing flows; it "arrives" one wire
            // latency after issue.
            tr.arrival_ns = now_ns + self.route_latency(src, dst);
        }
        // FIFO match against an already-posted receive.
        let key = self.pair_key(src, dst);
        let waiting_post = self
            .pair_queues
            .get_mut(&key)
            .and_then(|q| q.recvs.pop_front());
        if let Some(post) = waiting_post {
            tr.post_ns = post;
        } else {
            self.pair_queues
                .entry(key)
                .or_default()
                .sends
                .push_back(tid);
        }
        let matched = !tr.post_ns.is_nan();
        let arrival = tr.arrival_ns;
        self.transfers.push(tr);
        if eager {
            if bytes > 0 {
                self.net
                    .start_flow(self.hosts[src], self.hosts[dst], bytes, tid);
            } else if matched {
                // Arrival already known; the receive can complete.
                let post = self.transfers[tid as usize].post_ns;
                self.finish_recv(dst, arrival, post);
            }
        } else if matched {
            // Rendezvous with the receive already posted: flow starts now.
            self.net
                .start_flow(self.hosts[src], self.hosts[dst], bytes, tid);
        }
    }

    fn post_recv(&mut self, src: Rank, dst: Rank, now_ns: f64) {
        let key = self.pair_key(src, dst);
        let waiting_send = self
            .pair_queues
            .get_mut(&key)
            .and_then(|q| q.sends.pop_front());
        let Some(tid) = waiting_send else {
            self.pair_queues
                .entry(key)
                .or_default()
                .recvs
                .push_back(now_ns);
            return;
        };
        let tr = &mut self.transfers[tid as usize];
        tr.post_ns = now_ns;
        let (eager, arrival, bytes) = (tr.eager, tr.arrival_ns, tr.bytes);
        if !eager {
            // Rendezvous: the late receive releases the data. The flow
            // starts at the post instant (= max(issue, post)). Rendezvous
            // payloads are > eager_threshold ≥ 0, never empty.
            let (s, d) = (tr.src, tr.dst);
            self.net
                .start_flow(self.hosts[s], self.hosts[d], bytes, tid);
        } else if !arrival.is_nan() {
            // Eager data already arrived and waited as unexpected.
            self.finish_recv(dst, arrival, now_ns);
        }
    }

    /// Schedules the receiver-side completion of a matched message whose
    /// data arrives at `arrival_ns` and whose receive posted by
    /// `ready_ns`.
    fn finish_recv(&mut self, dst: Rank, arrival_ns: f64, ready_ns: f64) {
        let done = arrival_ns.max(ready_ns) + self.mpi.recv_overhead_ns as f64;
        self.schedule(dst, done);
    }

    fn on_flow_finish(&mut self, tid: u64, at_ns: f64) {
        let lat = {
            let tr = &self.transfers[tid as usize];
            self.route_latency(tr.src, tr.dst)
        };
        let tr = &mut self.transfers[tid as usize];
        let arrival = at_ns + lat;
        tr.arrival_ns = arrival;
        let (eager, src, dst, post) = (tr.eager, tr.src, tr.dst, tr.post_ns);
        if !eager {
            // The blocking rendezvous send completes with the flow.
            self.complete_part(src, at_ns);
        }
        if !post.is_nan() {
            self.finish_recv(dst, arrival, post);
        }
    }

    fn complete_part(&mut self, rank: Rank, now_ns: f64) {
        let state = &mut self.ranks[rank];
        debug_assert!(state.outstanding > 0, "completion without a pending op");
        state.outstanding -= 1;
        if state.outstanding == 0 {
            state.pc += 1;
            self.issue_current_op(rank, now_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alltoall::AllToAllAlgorithm;
    use simnet::config::{LinkConfig, SimConfig, SwitchConfig};
    use simnet::topology::TopologyBuilder;

    fn star(n: usize) -> (Topology, Vec<HostId>) {
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(n);
        let sw = b.add_switch(SwitchConfig::lossless_fabric());
        for &h in &hosts {
            b.link_host(h, sw, LinkConfig::gigabit_ethernet());
        }
        (b.build(&SimConfig::default()).unwrap(), hosts)
    }

    fn world<'a>(topo: &'a Topology, hosts: &'a [HostId]) -> FluidWorld<'a> {
        FluidWorld::new(topo, hosts.to_vec(), MpiConfig::default())
    }

    #[test]
    fn single_rendezvous_send_spans_the_transfer() {
        let (topo, hosts) = star(2);
        let w = world(&topo, &hosts);
        let r = w.run(vec![vec![Op::send(1, 125_000_000)], vec![Op::recv(0)]]);
        // 1 s of fluid plus microsecond-scale overheads.
        let d = r.duration_secs();
        assert!((d - 1.0).abs() < 1e-3, "duration = {d}");
        // Sender completes at flow finish; receiver a hair later
        // (latency + recv overhead).
        assert!(r.finished[0] < r.finished[1]);
    }

    #[test]
    fn eager_send_completes_before_receiver_posts() {
        let (topo, hosts) = star(2);
        let w = world(&topo, &hosts);
        let r = w.run(vec![vec![Op::send(1, 100)], vec![Op::recv(0)]]);
        assert!(r.finished[0] <= r.finished[1]);
    }

    #[test]
    fn barrier_releases_all_ranks_together() {
        let (topo, hosts) = star(4);
        let w = world(&topo, &hosts);
        let r = w.run(vec![
            vec![Op::send(1, 200_000), Op::Barrier],
            vec![Op::recv(0), Op::Barrier],
            vec![Op::Barrier],
            vec![Op::Barrier],
        ]);
        let min = r.finished.iter().min().unwrap();
        let max = r.finished.iter().max().unwrap();
        assert!(max.since(*min) < 1_000_000, "all release within 1 ms");
    }

    #[test]
    fn all_alltoall_algorithms_complete_fluidly() {
        for algo in AllToAllAlgorithm::all() {
            let n = 8;
            let (topo, hosts) = star(n);
            let w = world(&topo, &hosts);
            let r = w.run(algo.programs(n, 64 * 1024));
            let d = r.duration_secs();
            // 7 × 64 KiB into each 125 MB/s sink ≈ 3.6 ms minimum.
            assert!(d > 3.5e-3, "{}: {d}", algo.name());
            assert!(d < 1.0, "{}: {d}", algo.name());
        }
    }

    #[test]
    fn fluid_run_is_deterministic() {
        let (topo, hosts) = star(6);
        let w = world(&topo, &hosts);
        let progs = AllToAllAlgorithm::DirectExchange.programs(6, 32 * 1024);
        let a = w.run(progs.clone()).duration_secs();
        let b = w.run(progs).duration_secs();
        assert_eq!(a, b);
    }

    #[test]
    fn fluid_tracks_receiver_bottleneck_for_direct_alltoall() {
        let n = 8;
        let (topo, hosts) = star(n);
        let w = world(&topo, &hosts);
        let m = 1_000_000u64;
        let r = w.run(AllToAllAlgorithm::DirectExchangeNonblocking.programs(n, m));
        let ideal = (n as f64 - 1.0) * m as f64 / 125e6;
        let d = r.duration_secs();
        assert!(d >= ideal * 0.999, "{d} vs {ideal}");
        assert!(d <= ideal * 1.05, "{d} vs {ideal}");
    }

    #[test]
    fn mismatched_programs_deadlock_with_diagnostic() {
        let (topo, hosts) = star(2);
        let w = world(&topo, &hosts);
        // Rank 0 sends rendezvous-size data, rank 1 never posts a receive.
        let programs = vec![vec![Op::send(1, 1_000_000)], vec![]];
        match w.try_run(programs, RunGuard::unlimited()) {
            Err(RunInterrupt::Deadlocked { ranks, detail }) => {
                assert_eq!(ranks, vec![0]);
                assert!(detail.contains("blocked"), "{detail}");
            }
            other => panic!("expected a deadlock, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn run_still_panics_on_deadlock() {
        let (topo, hosts) = star(2);
        let w = world(&topo, &hosts);
        let _ = w.run(vec![vec![Op::send(1, 1_000_000)], vec![]]);
    }

    #[test]
    fn recompute_budget_interrupts_a_fluid_run() {
        let n = 8;
        let (topo, hosts) = star(n);
        let w = world(&topo, &hosts);
        let progs = AllToAllAlgorithm::DirectExchange.programs(n, 64 * 1024);
        let guard = RunGuard::unlimited().with_event_budget(1);
        match w.try_run(progs, guard) {
            Err(RunInterrupt::Guard(simnet::guard::GuardStop::Budget { budget: 1 })) => {}
            other => panic!("expected a budget stop, got {other:?}"),
        }
    }

    #[test]
    fn zero_byte_sends_complete() {
        let (topo, hosts) = star(2);
        let w = world(&topo, &hosts);
        let r = w.run(vec![vec![Op::send(1, 0)], vec![Op::recv(0)]]);
        assert!(r.duration_secs() < 1e-3);
    }
}
