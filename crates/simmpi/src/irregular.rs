//! The general (irregular) total exchange — `MPI_Alltoallv`.
//!
//! The paper formalizes the *total exchange problem* on a weighted digraph
//! (§5) where every pair may carry a different payload; the uniform
//! All-to-All is the special case it then studies. This module schedules
//! the general case, so the MED machinery in `contention-model` (Claims
//! 1–3) can be validated against executable workloads.

use crate::ops::{Op, Rank};

/// A per-pair payload matrix: `matrix[i][j]` bytes flow from rank `i` to
/// rank `j`. Zero entries mean no message; the diagonal is ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeMatrix {
    sizes: Vec<Vec<u64>>,
}

impl ExchangeMatrix {
    /// Builds a matrix, validating squareness.
    ///
    /// # Panics
    /// Panics if the matrix is not square or is empty.
    pub fn new(sizes: Vec<Vec<u64>>) -> Self {
        let n = sizes.len();
        assert!(n > 0, "empty exchange matrix");
        assert!(
            sizes.iter().all(|row| row.len() == n),
            "exchange matrix must be square"
        );
        Self { sizes }
    }

    /// The uniform All-to-All as a degenerate case.
    pub fn uniform(n: usize, m: u64) -> Self {
        let sizes = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0 } else { m }).collect())
            .collect();
        Self::new(sizes)
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.sizes.len()
    }

    /// Payload from `i` to `j` (zero on the diagonal).
    pub fn bytes(&self, i: Rank, j: Rank) -> u64 {
        if i == j {
            0
        } else {
            self.sizes[i][j]
        }
    }

    /// Total bytes rank `i` must send.
    pub fn send_volume(&self, i: Rank) -> u64 {
        (0..self.n()).map(|j| self.bytes(i, j)).sum()
    }

    /// Total bytes rank `j` must receive.
    pub fn recv_volume(&self, j: Rank) -> u64 {
        (0..self.n()).map(|i| self.bytes(i, j)).sum()
    }

    /// Direct-exchange schedule with rotated destinations (Algorithm 1
    /// generalized): round `t`, rank `i` sends its block to `(i+t) mod n`
    /// if non-empty and receives from `(i−t) mod n` if that block exists.
    pub fn direct_exchange_programs(&self) -> Vec<Vec<Op>> {
        let n = self.n();
        (0..n)
            .map(|i| {
                (1..n)
                    .filter_map(|t| {
                        let to = (i + t) % n;
                        let from = (i + n - t) % n;
                        let sends: Vec<(Rank, u64)> = if self.bytes(i, to) > 0 {
                            vec![(to, self.bytes(i, to))]
                        } else {
                            vec![]
                        };
                        let recvs: Vec<Rank> = if self.bytes(from, i) > 0 {
                            vec![from]
                        } else {
                            vec![]
                        };
                        if sends.is_empty() && recvs.is_empty() {
                            None
                        } else {
                            Some(Op::Transfer { sends, recvs })
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Post-everything nonblocking schedule (what `MPI_Alltoallv` over
    /// isend/irecv does).
    pub fn nonblocking_programs(&self) -> Vec<Vec<Op>> {
        let n = self.n();
        (0..n)
            .map(|i| {
                let sends: Vec<(Rank, u64)> = (1..n)
                    .map(|t| (i + t) % n)
                    .filter(|&j| self.bytes(i, j) > 0)
                    .map(|j| (j, self.bytes(i, j)))
                    .collect();
                let recvs: Vec<Rank> = (1..n)
                    .map(|t| (i + n - t) % n)
                    .filter(|&j| self.bytes(j, i) > 0)
                    .collect();
                if sends.is_empty() && recvs.is_empty() {
                    vec![]
                } else {
                    vec![Op::Transfer { sends, recvs }]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lopsided() -> ExchangeMatrix {
        // Rank 0 is a heavy producer; rank 2 receives nothing from 1.
        ExchangeMatrix::new(vec![
            vec![0, 1000, 2000, 3000],
            vec![10, 0, 0, 30],
            vec![1, 2, 0, 4],
            vec![100, 200, 300, 0],
        ])
    }

    #[test]
    fn volumes_sum_rows_and_columns() {
        let m = lopsided();
        assert_eq!(m.send_volume(0), 6000);
        assert_eq!(m.send_volume(1), 40);
        assert_eq!(m.recv_volume(2), 2300);
        assert_eq!(m.recv_volume(0), 111);
    }

    #[test]
    fn uniform_matches_alltoall() {
        let m = ExchangeMatrix::uniform(5, 64);
        for i in 0..5 {
            assert_eq!(m.send_volume(i), 4 * 64);
            assert_eq!(m.recv_volume(i), 4 * 64);
            assert_eq!(m.bytes(i, i), 0);
        }
    }

    #[test]
    fn schedules_cover_every_nonzero_block_once() {
        let m = lopsided();
        for programs in [m.direct_exchange_programs(), m.nonblocking_programs()] {
            let n = m.n();
            let mut sent = vec![vec![0u64; n]; n];
            let mut recv_posted = vec![vec![0usize; n]; n];
            for (i, prog) in programs.iter().enumerate() {
                for op in prog {
                    if let Op::Transfer { sends, recvs } = op {
                        for &(to, bytes) in sends {
                            sent[i][to] += bytes;
                        }
                        for &from in recvs {
                            recv_posted[from][i] += 1;
                        }
                    }
                }
            }
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(sent[i][j], m.bytes(i, j), "{i}->{j}");
                    let expected = usize::from(m.bytes(i, j) > 0);
                    assert_eq!(recv_posted[i][j], expected, "recv {i}->{j}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_matrix_rejected() {
        let _ = ExchangeMatrix::new(vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn zero_blocks_are_skipped() {
        let m = ExchangeMatrix::new(vec![vec![0, 0], vec![5, 0]]);
        let progs = m.direct_exchange_programs();
        // Rank 0 only receives; rank 1 only sends.
        let count_ops = |p: &Vec<Op>| p.len();
        assert_eq!(count_ops(&progs[0]), 1);
        assert_eq!(count_ops(&progs[1]), 1);
    }
}
