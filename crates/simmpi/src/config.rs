//! MPI-layer configuration.

use serde::{Deserialize, Serialize};

/// Parameters of the simulated MPI point-to-point protocol stack.
///
/// These model a LAM-MPI-era TCP RPI: messages at or below the eager
/// threshold are shipped immediately with their envelope; larger messages do
/// a rendezvous (RTS envelope → CTS → data). Per-message host overheads
/// carry uniform jitter, which is what lets simulated rounds drift out of
/// phase the way real clusters do.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpiConfig {
    /// Largest payload (bytes) sent eagerly; above this, rendezvous.
    pub eager_threshold: u64,
    /// Envelope bytes prepended to eager payloads and used as the RTS size.
    pub envelope_bytes: u64,
    /// Clear-to-send control message size in bytes.
    pub cts_bytes: u64,
    /// Sender CPU overhead per message, nanoseconds.
    pub send_overhead_ns: u64,
    /// Receiver CPU overhead per message, nanoseconds.
    pub recv_overhead_ns: u64,
    /// Uniform jitter bound added to each CPU overhead, nanoseconds.
    pub overhead_jitter_ns: u64,
    /// Probability that a CPU overhead additionally suffers an OS
    /// scheduling hiccup (kernel timeslice preemption). TCP stacks live in
    /// the kernel and eat these; OS-bypass stacks like Myrinet's `gm` do
    /// not, which is why the paper measures δ in milliseconds on Ethernet
    /// and below a microsecond on Myrinet.
    pub hiccup_probability: f64,
    /// Mean hiccup duration in nanoseconds (drawn uniform in
    /// `[0.5×, 1.5×]` of this mean).
    pub hiccup_mean_ns: u64,
    /// Idle gap inserted between timed repetitions, nanoseconds.
    pub rep_gap_ns: u64,
    /// Seed for the executor's jitter RNG.
    pub seed: u64,
}

impl Default for MpiConfig {
    fn default() -> Self {
        Self {
            eager_threshold: 8 * 1024,
            envelope_bytes: 64,
            cts_bytes: 32,
            send_overhead_ns: 4_000,
            recv_overhead_ns: 4_000,
            overhead_jitter_ns: 2_000,
            hiccup_probability: 0.0,
            hiccup_mean_ns: 0,
            rep_gap_ns: 1_000_000,
            seed: 0xA117_0A11,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_eager_below_threshold() {
        let c = MpiConfig::default();
        assert!(c.eager_threshold >= 1024);
        assert!(c.envelope_bytes > 0);
    }
}
