//! Further collective operations, as per-rank schedules.
//!
//! The paper's conclusion: "we expect to extend our models to other
//! collective communication operations, which are especially affected by
//! contention when scaling up". This module supplies the schedules —
//! broadcast, scatter, gather, all-gather in their textbook algorithms —
//! so the signature methodology can be applied beyond the All-to-All
//! (see `contention-model::collective`).

use crate::ops::{Op, Rank};
use serde::{Deserialize, Serialize};

/// A collective operation with per-block payload `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collective {
    /// Root sends the same `m` bytes to everyone (binomial tree).
    Broadcast {
        /// Originating rank.
        root: Rank,
    },
    /// Root distributes a distinct `m`-byte block to every rank
    /// (binomial tree, payload halving per level).
    Scatter {
        /// Originating rank.
        root: Rank,
    },
    /// Every rank sends its `m`-byte block to the root (reverse binomial).
    Gather {
        /// Collecting rank.
        root: Rank,
    },
    /// Everyone ends with everyone's block (ring pass).
    AllGatherRing,
    /// Everyone ends with everyone's block (recursive doubling; requires a
    /// power-of-two rank count).
    AllGatherRecursiveDoubling,
}

impl Collective {
    /// Short identifier for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Collective::Broadcast { .. } => "broadcast",
            Collective::Scatter { .. } => "scatter",
            Collective::Gather { .. } => "gather",
            Collective::AllGatherRing => "allgather-ring",
            Collective::AllGatherRecursiveDoubling => "allgather-recdbl",
        }
    }

    /// Builds per-rank programs for `n` ranks and block size `m`.
    ///
    /// # Panics
    /// Panics if `m == 0`, a root is out of range, or (recursive doubling)
    /// `n` is not a power of two.
    pub fn programs(&self, n: usize, m: u64) -> Vec<Vec<Op>> {
        assert!(m > 0, "empty collective payload");
        match *self {
            Collective::Broadcast { root } => binomial_bcast(n, m, root),
            Collective::Scatter { root } => binomial_scatter(n, m, root, false),
            Collective::Gather { root } => binomial_scatter(n, m, root, true),
            Collective::AllGatherRing => allgather_ring(n, m),
            Collective::AllGatherRecursiveDoubling => allgather_recdbl(n, m),
        }
    }
}

/// Binomial broadcast: in round `k`, every rank that already holds the data
/// and whose (root-relative) id has exactly `k` trailing capacity sends to
/// `id + 2^k`.
fn binomial_bcast(n: usize, m: u64, root: Rank) -> Vec<Vec<Op>> {
    assert!(root < n, "root out of range");
    let mut programs = vec![Vec::new(); n];
    let rel = |abs: Rank| (abs + n - root) % n;
    let abs = |rel: Rank| (rel + root) % n;
    let rounds = (usize::BITS - (n - 1).leading_zeros()) as usize;
    for k in 0..rounds {
        let step = 1usize << k;
        for r in 0..n {
            let id = rel(r);
            if id < step && id + step < n {
                programs[r].push(Op::send(abs(id + step), m));
                programs[abs(id + step)].push(Op::recv(r));
            }
        }
    }
    programs
}

/// Binomial scatter (or, `reverse`, gather): the root's payload halves at
/// each tree level — a send at step `s` carries the blocks of the `s`
/// ranks in the receiver's subtree.
fn binomial_scatter(n: usize, m: u64, root: Rank, reverse: bool) -> Vec<Vec<Op>> {
    assert!(root < n, "root out of range");
    let mut programs = vec![Vec::new(); n];
    let rel = |abs: Rank| (abs + n - root) % n;
    let abs = |rel: Rank| (rel + root) % n;
    let rounds = (usize::BITS - (n - 1).leading_zeros()) as usize;
    // Top-down for scatter; the same edges bottom-up for gather.
    let mut edges: Vec<(Rank, Rank, u64)> = Vec::new();
    for k in (0..rounds).rev() {
        let step = 1usize << k;
        for r in 0..n {
            let id = rel(r);
            if id < step && id + step < n {
                // Subtree of (id + step) holds min(step, n - id - step) ranks.
                let subtree = step.min(n - id - step) as u64;
                edges.push((r, abs(id + step), subtree * m));
            }
        }
    }
    if reverse {
        for &(parent, child, bytes) in edges.iter().rev() {
            programs[child].push(Op::send(parent, bytes));
            programs[parent].push(Op::recv(child));
        }
    } else {
        for &(parent, child, bytes) in &edges {
            programs[parent].push(Op::send(child, bytes));
            programs[child].push(Op::recv(parent));
        }
    }
    programs
}

/// Ring all-gather: `n−1` rounds; each round passes one block right.
fn allgather_ring(n: usize, m: u64) -> Vec<Vec<Op>> {
    (0..n)
        .map(|i| {
            (1..n)
                .map(|_| Op::sendrecv((i + 1) % n, m, (i + n - 1) % n))
                .collect()
        })
        .collect()
}

/// Recursive-doubling all-gather: round `k` exchanges `2^k` blocks with the
/// partner `i XOR 2^k`.
fn allgather_recdbl(n: usize, m: u64) -> Vec<Vec<Op>> {
    assert!(n.is_power_of_two(), "recursive doubling needs 2^k ranks");
    (0..n)
        .map(|i| {
            (0..n.trailing_zeros())
                .map(|k| {
                    let peer = i ^ (1usize << k);
                    let bytes = (1u64 << k) * m;
                    Op::sendrecv(peer, bytes, peer)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sends and posted receives must match per ordered pair.
    fn check_balance(programs: &[Vec<Op>]) {
        let n = programs.len();
        let mut sends = vec![0usize; n * n];
        let mut recvs = vec![0usize; n * n];
        for (i, prog) in programs.iter().enumerate() {
            for op in prog {
                if let Op::Transfer { sends: s, recvs: r } = op {
                    for &(to, bytes) in s {
                        assert_ne!(to, i);
                        assert!(bytes > 0);
                        sends[i * n + to] += 1;
                    }
                    for &from in r {
                        recvs[from * n + i] += 1;
                    }
                }
            }
        }
        assert_eq!(sends, recvs);
    }

    #[test]
    fn broadcast_reaches_every_rank_in_log_rounds() {
        for n in [2usize, 3, 5, 8, 13, 16] {
            for root in [0, n - 1] {
                let progs = Collective::Broadcast { root }.programs(n, 100);
                check_balance(&progs);
                // Every non-root rank receives exactly once.
                for (i, prog) in progs.iter().enumerate() {
                    let recv_count: usize = prog
                        .iter()
                        .map(|op| match op {
                            Op::Transfer { recvs, .. } => recvs.len(),
                            _ => 0,
                        })
                        .sum();
                    assert_eq!(
                        recv_count,
                        usize::from(i != root),
                        "n={n} root={root} i={i}"
                    );
                }
                // Total sends = n−1 (each rank informed once).
                let total_sends: usize = progs
                    .iter()
                    .flatten()
                    .map(|op| match op {
                        Op::Transfer { sends, .. } => sends.len(),
                        _ => 0,
                    })
                    .sum();
                assert_eq!(total_sends, n - 1);
            }
        }
    }

    #[test]
    fn scatter_conserves_root_bytes() {
        for n in [2usize, 4, 7, 8, 12] {
            let m = 1000u64;
            let progs = Collective::Scatter { root: 0 }.programs(n, m);
            check_balance(&progs);
            // The root emits exactly (n−1)·m bytes in total.
            let root_bytes: u64 = progs[0]
                .iter()
                .map(|op| match op {
                    Op::Transfer { sends, .. } => sends.iter().map(|s| s.1).sum(),
                    _ => 0,
                })
                .sum();
            assert_eq!(root_bytes, (n as u64 - 1) * m, "n={n}");
        }
    }

    #[test]
    fn gather_mirrors_scatter() {
        let n = 12;
        let m = 500;
        let scatter = Collective::Scatter { root: 3 }.programs(n, m);
        let gather = Collective::Gather { root: 3 }.programs(n, m);
        check_balance(&gather);
        // Total bytes moved are identical; directions reversed.
        let total = |progs: &[Vec<Op>]| -> u64 {
            progs
                .iter()
                .flatten()
                .map(|op| match op {
                    Op::Transfer { sends, .. } => sends.iter().map(|s| s.1).sum(),
                    _ => 0,
                })
                .sum()
        };
        assert_eq!(total(&scatter), total(&gather));
    }

    #[test]
    fn allgather_ring_moves_n_minus_1_blocks_per_rank() {
        let progs = Collective::AllGatherRing.programs(5, 100);
        check_balance(&progs);
        for prog in &progs {
            assert_eq!(prog.len(), 4);
        }
    }

    #[test]
    fn allgather_recdbl_doubles_payloads() {
        let progs = Collective::AllGatherRecursiveDoubling.programs(8, 100);
        check_balance(&progs);
        let sizes: Vec<u64> = progs[0]
            .iter()
            .map(|op| match op {
                Op::Transfer { sends, .. } => sends[0].1,
                _ => 0,
            })
            .collect();
        assert_eq!(sizes, vec![100, 200, 400]);
    }

    #[test]
    #[should_panic(expected = "2^k ranks")]
    fn recdbl_rejects_non_power_of_two() {
        let _ = Collective::AllGatherRecursiveDoubling.programs(6, 100);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Collective::Broadcast { root: 0 }.name(), "broadcast");
        assert_eq!(Collective::AllGatherRing.name(), "allgather-ring");
    }
}
