//! All-to-All algorithms as per-rank operation schedules.
//!
//! The paper's measurements are of the **Direct Exchange** schedule
//! (Algorithm 1): `n−1` rounds where in round `t` rank `i` sends to
//! `(i+t) mod n` while receiving from `(i−t) mod n`, destinations rotating
//! to avoid overloading any single receiver. That is what LAM-MPI and
//! MPICH used for `MPI_Alltoall` at the time.
//!
//! The baselines here exist for the comparison benches: the post-everything
//! non-blocking variant, Bruck's log-round combining algorithm, the
//! pairwise-XOR exchange (power-of-two process counts) and a ring/bucket
//! pass.

use crate::ops::{Op, Rank};
use serde::{Deserialize, Serialize};

/// Selectable All-to-All implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllToAllAlgorithm {
    /// Algorithm 1 of the paper: blocking sendrecv rounds with rotating
    /// destinations.
    DirectExchange,
    /// All sends and receives posted at once, then a single wait-all: what
    /// an `MPI_Ialltoall`-style implementation does.
    DirectExchangeNonblocking,
    /// Bruck et al.: ⌈log₂ n⌉ rounds with message combining; fewer, larger
    /// messages at the cost of transmitting each byte multiple times.
    Bruck,
    /// Pairwise exchange on `i XOR t` partners; requires a power-of-two
    /// process count.
    PairwiseExchange,
    /// Ring/bucket brigade: round `t` forwards the not-yet-home blocks to
    /// the right neighbour.
    Ring,
}

impl AllToAllAlgorithm {
    /// Short, stable identifier used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            AllToAllAlgorithm::DirectExchange => "direct",
            AllToAllAlgorithm::DirectExchangeNonblocking => "direct-nb",
            AllToAllAlgorithm::Bruck => "bruck",
            AllToAllAlgorithm::PairwiseExchange => "pairwise",
            AllToAllAlgorithm::Ring => "ring",
        }
    }

    /// All algorithms, for sweeps.
    pub fn all() -> [AllToAllAlgorithm; 5] {
        [
            AllToAllAlgorithm::DirectExchange,
            AllToAllAlgorithm::DirectExchangeNonblocking,
            AllToAllAlgorithm::Bruck,
            AllToAllAlgorithm::PairwiseExchange,
            AllToAllAlgorithm::Ring,
        ]
    }

    /// Builds the per-rank programs for an All-to-All of `message_bytes`
    /// per pair over `n` ranks.
    ///
    /// # Panics
    /// Panics if `message_bytes == 0`, or for [`PairwiseExchange`] when `n`
    /// is not a power of two.
    ///
    /// [`PairwiseExchange`]: AllToAllAlgorithm::PairwiseExchange
    pub fn programs(&self, n: usize, message_bytes: u64) -> Vec<Vec<Op>> {
        assert!(message_bytes > 0, "All-to-All of empty messages");
        match self {
            AllToAllAlgorithm::DirectExchange => direct_exchange(n, message_bytes),
            AllToAllAlgorithm::DirectExchangeNonblocking => {
                direct_exchange_nonblocking(n, message_bytes)
            }
            AllToAllAlgorithm::Bruck => bruck(n, message_bytes),
            AllToAllAlgorithm::PairwiseExchange => pairwise(n, message_bytes),
            AllToAllAlgorithm::Ring => ring(n, message_bytes),
        }
    }
}

/// Algorithm 1: `for t in 1..n`, rank `i` sendrecvs with `(i±t) mod n`.
fn direct_exchange(n: usize, m: u64) -> Vec<Vec<Op>> {
    (0..n)
        .map(|i| {
            (1..n)
                .map(|t| Op::Transfer {
                    sends: vec![((i + t) % n, m)],
                    recvs: vec![(i + n - t) % n],
                })
                .collect()
        })
        .collect()
}

/// Everything posted at once; completion when all sends and receives done.
fn direct_exchange_nonblocking(n: usize, m: u64) -> Vec<Vec<Op>> {
    (0..n)
        .map(|i| {
            let sends: Vec<(Rank, u64)> = (1..n).map(|t| ((i + t) % n, m)).collect();
            let recvs: Vec<Rank> = (1..n).map(|t| (i + n - t) % n).collect();
            vec![Op::Transfer { sends, recvs }]
        })
        .collect()
}

/// Bruck: round `k` ships every block whose destination offset has bit `k`
/// set, to partner `(i + 2^k) mod n`. Message size per round is the number
/// of such offsets times `m`.
fn bruck(n: usize, m: u64) -> Vec<Vec<Op>> {
    let rounds = (usize::BITS - (n - 1).leading_zeros()) as usize; // ⌈log₂ n⌉
    (0..n)
        .map(|i| {
            (0..rounds)
                .filter_map(|k| {
                    let step = 1usize << k;
                    let blocks = (1..n).filter(|off| off & step != 0).count() as u64;
                    if blocks == 0 {
                        return None;
                    }
                    Some(Op::Transfer {
                        sends: vec![((i + step) % n, blocks * m)],
                        recvs: vec![(i + n - step % n) % n],
                    })
                })
                .collect()
        })
        .collect()
}

/// Pairwise exchange: round `t` pairs `i` with `i XOR t` (n must be 2^k).
fn pairwise(n: usize, m: u64) -> Vec<Vec<Op>> {
    assert!(n.is_power_of_two(), "pairwise exchange needs 2^k ranks");
    (0..n)
        .map(|i| {
            (1..n)
                .map(|t| {
                    let peer = i ^ t;
                    Op::Transfer {
                        sends: vec![(peer, m)],
                        recvs: vec![peer],
                    }
                })
                .collect()
        })
        .collect()
}

/// Ring/bucket: round `t in 1..n` sends the `(n−t)` still-travelling blocks
/// to the right neighbour and receives as many from the left.
fn ring(n: usize, m: u64) -> Vec<Vec<Op>> {
    (0..n)
        .map(|i| {
            (1..n)
                .map(|t| Op::Transfer {
                    sends: vec![((i + 1) % n, (n - t) as u64 * m)],
                    recvs: vec![(i + n - 1) % n],
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every rank must, across its whole program, send exactly one message
    /// to every other rank (direct algorithms) and post a matching number
    /// of receives.
    fn check_send_recv_balance(programs: &[Vec<Op>]) {
        let n = programs.len();
        // Global matching: per ordered pair, sends issued == recvs posted.
        let mut sends = vec![0usize; n * n];
        let mut recvs = vec![0usize; n * n];
        for (i, prog) in programs.iter().enumerate() {
            for op in prog {
                if let Op::Transfer { sends: s, recvs: r } = op {
                    for &(to, bytes) in s {
                        assert_ne!(to, i, "self-sends must be elided");
                        assert!(bytes > 0);
                        sends[i * n + to] += 1;
                    }
                    for &from in r {
                        assert_ne!(from, i);
                        recvs[from * n + i] += 1;
                    }
                }
            }
        }
        assert_eq!(sends, recvs, "every send needs a posted receive");
    }

    #[test]
    fn direct_exchange_matches_paper_algorithm() {
        let n = 5;
        let progs = AllToAllAlgorithm::DirectExchange.programs(n, 100);
        assert_eq!(progs.len(), n);
        for (i, prog) in progs.iter().enumerate() {
            assert_eq!(prog.len(), n - 1, "n−1 rounds");
            for (idx, op) in prog.iter().enumerate() {
                let t = idx + 1;
                match op {
                    Op::Transfer { sends, recvs } => {
                        assert_eq!(sends, &vec![((i + t) % n, 100)]);
                        assert_eq!(recvs, &vec![(i + n - t) % n]);
                    }
                    _ => panic!("direct exchange is all transfers"),
                }
            }
        }
        check_send_recv_balance(&progs);
    }

    #[test]
    fn nonblocking_posts_everything_in_one_op() {
        let progs = AllToAllAlgorithm::DirectExchangeNonblocking.programs(6, 10);
        for prog in &progs {
            assert_eq!(prog.len(), 1);
            if let Op::Transfer { sends, recvs } = &prog[0] {
                assert_eq!(sends.len(), 5);
                assert_eq!(recvs.len(), 5);
            }
        }
        check_send_recv_balance(&progs);
    }

    #[test]
    fn bruck_has_log_rounds_and_conserves_bytes() {
        for n in [4usize, 5, 8, 13] {
            let m = 100u64;
            let progs = AllToAllAlgorithm::Bruck.programs(n, m);
            let rounds = (usize::BITS - (n - 1).leading_zeros()) as usize;
            for prog in &progs {
                assert!(prog.len() <= rounds);
            }
            // Total bytes sent per rank = m × Σ_k |{off: bit k set}| =
            // m × Σ_off popcount(off).
            let expected: u64 = (1..n).map(|off| off.count_ones() as u64 * m).sum();
            if let Some(prog) = progs.first() {
                let total: u64 = prog
                    .iter()
                    .filter_map(|op| match op {
                        Op::Transfer { sends, .. } => Some(sends.iter().map(|s| s.1).sum::<u64>()),
                        _ => None,
                    })
                    .sum();
                assert_eq!(total, expected, "n={n}");
            }
            check_send_recv_balance(&progs);
        }
    }

    #[test]
    fn pairwise_requires_power_of_two() {
        let progs = AllToAllAlgorithm::PairwiseExchange.programs(8, 50);
        check_send_recv_balance(&progs);
        for prog in &progs {
            assert_eq!(prog.len(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "2^k ranks")]
    fn pairwise_rejects_non_power_of_two() {
        let _ = AllToAllAlgorithm::PairwiseExchange.programs(6, 50);
    }

    #[test]
    fn ring_sizes_decrease() {
        let progs = AllToAllAlgorithm::Ring.programs(4, 10);
        let sizes: Vec<u64> = progs[0]
            .iter()
            .filter_map(|op| match op {
                Op::Transfer { sends, .. } => Some(sends[0].1),
                _ => None,
            })
            .collect();
        assert_eq!(sizes, vec![30, 20, 10]);
        check_send_recv_balance(&progs);
    }

    #[test]
    fn every_algorithm_balances_at_various_sizes() {
        for algo in AllToAllAlgorithm::all() {
            for n in [2usize, 4, 8, 16] {
                let progs = algo.programs(n, 1024);
                check_send_recv_balance(&progs);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty messages")]
    fn zero_byte_alltoall_rejected() {
        let _ = AllToAllAlgorithm::DirectExchange.programs(4, 0);
    }
}
