//! Measurement harnesses: ping-pong, timed All-to-All repetitions, and the
//! network stress test of the paper's §3.

use crate::alltoall::AllToAllAlgorithm;
use crate::ops::{Op, Rank};
use crate::world::World;
use serde::{Deserialize, Serialize};
use simnet::obs::Recorder;

/// One ping-pong measurement point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PingPongPoint {
    /// Payload size in bytes.
    pub size: u64,
    /// Half round-trip (one-way) time in seconds, averaged over the
    /// round-trips of the run.
    pub half_rtt_secs: f64,
}

/// Measures one-way point-to-point times between two ranks across `sizes`,
/// with `round_trips` ping-pongs per size. This is the paper's "simple
/// point-to-point measure" from which the Hockney `α` and `β` are fitted.
pub fn ping_pong<R: Recorder>(
    world: &mut World<R>,
    a: Rank,
    b: Rank,
    sizes: &[u64],
    round_trips: usize,
) -> Vec<PingPongPoint> {
    assert_ne!(a, b, "ping-pong needs two distinct ranks");
    assert!(round_trips > 0);
    sizes
        .iter()
        .map(|&size| {
            let mut programs = vec![Vec::new(); world.n_ranks()];
            for _ in 0..round_trips {
                programs[a].push(Op::send(b, size));
                programs[a].push(Op::recv(b));
                programs[b].push(Op::recv(a));
                programs[b].push(Op::send(a, size));
            }
            let result = world.run(programs);
            PingPongPoint {
                size,
                half_rtt_secs: result.rank_duration_secs(a) / (2.0 * round_trips as f64),
            }
        })
        .collect()
}

/// Timed All-to-All repetitions: returns one completion time (seconds) per
/// measured repetition, after `warmup` discarded repetitions. Mirrors the
/// paper's averaging of repeated `MPI_Alltoall` runs.
pub fn alltoall_times<R: Recorder>(
    world: &mut World<R>,
    algorithm: AllToAllAlgorithm,
    message_bytes: u64,
    warmup: usize,
    reps: usize,
) -> Vec<f64> {
    assert!(reps > 0);
    let n = world.n_ranks();
    let programs = algorithm.programs(n, message_bytes);
    for _ in 0..warmup {
        let _ = world.run(programs.clone());
    }
    (0..reps)
        .map(|_| world.run(programs.clone()).duration_secs())
        .collect()
}

/// Result of one stress run (paper §3, Figs. 2–3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StressResult {
    /// Bytes each connection transferred.
    pub bytes: u64,
    /// Per-connection completion times in seconds (receiver-observed).
    pub times_secs: Vec<f64>,
}

impl StressResult {
    /// Mean per-connection throughput in bytes/second ("average bandwidth"
    /// in the paper's Fig. 2 sense: the mean of individual throughputs).
    pub fn mean_throughput(&self) -> f64 {
        let sum: f64 = self.times_secs.iter().map(|&t| self.bytes as f64 / t).sum();
        sum / self.times_secs.len() as f64
    }

    /// Slowest over fastest connection time — the straggler factor the
    /// paper reads off Fig. 3 (≈ 6× under saturation).
    pub fn straggler_factor(&self) -> f64 {
        let min = self
            .times_secs
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.times_secs.iter().cloned().fold(0.0, f64::max);
        max / min
    }
}

/// Floods the network: each `(sender, receiver)` pair moves `bytes`
/// simultaneously, all starting together. Returns per-connection times.
///
/// # Panics
/// Panics if `pairs` is empty or a rank appears twice (each connection
/// needs dedicated endpoints, as in the paper's setup).
pub fn stress_run<R: Recorder>(
    world: &mut World<R>,
    pairs: &[(Rank, Rank)],
    bytes: u64,
) -> StressResult {
    assert!(!pairs.is_empty(), "stress test needs at least one pair");
    let mut used = vec![false; world.n_ranks()];
    for &(s, r) in pairs {
        assert!(!used[s] && !used[r], "ranks must be pairwise disjoint");
        used[s] = true;
        used[r] = true;
    }
    let mut programs = vec![Vec::new(); world.n_ranks()];
    for &(s, r) in pairs {
        programs[s].push(Op::send(r, bytes));
        programs[r].push(Op::recv(s));
    }
    let result = world.run(programs);
    StressResult {
        bytes,
        times_secs: pairs
            .iter()
            .map(|&(_, r)| result.rank_duration_secs(r))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpiConfig;
    use simnet::prelude::*;

    fn star_world(n: usize) -> World {
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(n);
        let sw = b.add_switch(SwitchConfig::commodity_ethernet());
        for &h in &hosts {
            b.link_host(h, sw, LinkConfig::gigabit_ethernet());
        }
        let cfg = SimConfig::default();
        let sim = Simulator::new(b.build(&cfg).unwrap(), cfg);
        World::new(
            sim,
            hosts,
            MpiConfig::default(),
            TransportKind::Tcp(TcpConfig::default()),
        )
    }

    #[test]
    fn pingpong_time_grows_with_size() {
        let mut w = star_world(2);
        let points = ping_pong(&mut w, 0, 1, &[1_000, 1_000_000], 3);
        assert_eq!(points.len(), 2);
        assert!(points[1].half_rtt_secs > points[0].half_rtt_secs);
        // 1 MB one-way on GbE ≈ 8 ms minimum.
        assert!(points[1].half_rtt_secs > 0.008);
    }

    #[test]
    fn alltoall_times_returns_requested_reps() {
        let mut w = star_world(4);
        let times = alltoall_times(&mut w, AllToAllAlgorithm::DirectExchange, 16 * 1024, 1, 3);
        assert_eq!(times.len(), 3);
        assert!(times.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn stress_run_reports_per_connection_times() {
        let mut w = star_world(6);
        let result = stress_run(&mut w, &[(0, 3), (1, 4), (2, 5)], 1_000_000);
        assert_eq!(result.times_secs.len(), 3);
        assert!(result.mean_throughput() > 0.0);
        assert!(result.straggler_factor() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "pairwise disjoint")]
    fn stress_rejects_shared_ranks() {
        let mut w = star_world(4);
        let _ = stress_run(&mut w, &[(0, 1), (1, 2)], 1000);
    }
}
