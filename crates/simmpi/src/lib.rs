//! # simmpi — a simulated MPI layer over [`simnet`]
//!
//! Stands in for LAM-MPI/MPICH in the paper's experiments. It provides:
//!
//! * ranks mapped onto simulator hosts ([`world::World`]);
//! * blocking point-to-point semantics with an **eager/rendezvous**
//!   protocol (envelope overheads, unexpected-message queueing, RTS/CTS
//!   handshakes) — the source of the paper's small-message non-linearity
//!   (Fig. 5) and of the `M` cutoff in the signature model;
//! * the paper's **Direct Exchange** All-to-All (Algorithm 1) plus baseline
//!   algorithms (Bruck, pairwise, ring, nonblocking post-all);
//! * measurement harnesses: ping-pong (Hockney α/β), timed All-to-All
//!   repetitions, and the §3 network stress test.
//!
//! ## Example: time one All-to-All
//!
//! ```
//! use simnet::prelude::*;
//! use simmpi::prelude::*;
//!
//! let mut b = TopologyBuilder::new();
//! let hosts = b.add_hosts(4);
//! let sw = b.add_switch(SwitchConfig::commodity_ethernet());
//! for &h in &hosts {
//!     b.link_host(h, sw, LinkConfig::gigabit_ethernet());
//! }
//! let cfg = SimConfig::default();
//! let sim = Simulator::new(b.build(&cfg).unwrap(), cfg);
//! let mut world = World::new(sim, hosts, MpiConfig::default(),
//!                            TransportKind::Tcp(TcpConfig::default()));
//! let times = alltoall_times(&mut world, AllToAllAlgorithm::DirectExchange,
//!                            64 * 1024, 1, 3);
//! assert_eq!(times.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alltoall;
pub mod collectives;
pub mod config;
pub mod fluid;
pub mod harness;
pub mod irregular;
pub mod ops;
pub mod world;

/// Commonly used items.
pub mod prelude {
    pub use crate::alltoall::AllToAllAlgorithm;
    pub use crate::collectives::Collective;
    pub use crate::config::MpiConfig;
    pub use crate::fluid::FluidWorld;
    pub use crate::harness::{alltoall_times, ping_pong, stress_run, PingPongPoint, StressResult};
    pub use crate::irregular::ExchangeMatrix;
    pub use crate::ops::{Op, Rank};
    pub use crate::world::{RunInterrupt, RunResult, World};
}

pub use prelude::*;
