//! Property-based tests of the MPI executor: random matched programs
//! complete without deadlock; collectives deliver the right message count;
//! protocol choice (eager vs rendezvous) never changes outcomes, only
//! timing.

use proptest::prelude::*;
use simmpi::prelude::*;
use simnet::prelude::*;

fn star_world(n: usize, mpi: MpiConfig, seed: u64) -> World {
    let mut b = TopologyBuilder::new();
    let hosts = b.add_hosts(n);
    let sw = b.add_switch(SwitchConfig::commodity_ethernet());
    for &h in &hosts {
        b.link_host(h, sw, LinkConfig::gigabit_ethernet());
    }
    let cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let sim = Simulator::new(b.build(&cfg).unwrap(), cfg);
    World::new(sim, hosts, mpi, TransportKind::Tcp(TcpConfig::default()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random permutation exchanges (every rank sends to a random partner
    /// permutation and receives accordingly) always complete.
    #[test]
    fn random_permutation_exchanges_complete(
        n in 2usize..8,
        rounds in 1usize..4,
        shift_seed in 1usize..100,
        bytes in 64u64..100_000,
        seed in 0u64..500,
    ) {
        let mut programs = vec![Vec::new(); n];
        for r in 1..=rounds {
            // A cyclic shift permutation per round (always a bijection
            // without fixed points when shift % n != 0).
            let shift = 1 + (shift_seed * r) % (n - 1).max(1);
            for (i, prog) in programs.iter_mut().enumerate() {
                prog.push(Op::sendrecv((i + shift) % n, bytes, (i + n - shift) % n));
            }
        }
        let mut world = star_world(n, MpiConfig::default(), seed);
        let result = world.run(programs);
        prop_assert!(result.duration_secs() > 0.0);
        prop_assert_eq!(result.finished.len(), n);
    }

    /// Every All-to-All algorithm completes and delivers exactly the
    /// messages its schedule promises, at any size straddling the
    /// eager/rendezvous threshold.
    #[test]
    fn algorithms_deliver_expected_message_counts(
        algo_idx in 0usize..5,
        bytes in prop::sample::select(vec![512u64, 8 * 1024, 9 * 1024, 64 * 1024]),
        seed in 0u64..500,
    ) {
        let n = 8; // power of two: all algorithms legal
        let algo = AllToAllAlgorithm::all()[algo_idx];
        let programs = algo.programs(n, bytes);
        let expected: usize = programs
            .iter()
            .flatten()
            .map(|op| match op {
                Op::Transfer { sends, .. } => sends.len(),
                Op::Barrier => 0,
            })
            .sum();
        let mut world = star_world(n, MpiConfig::default(), seed);
        let before = world.sim().stats().messages_delivered;
        let result = world.run(programs);
        prop_assert!(result.duration_secs() > 0.0);
        // Each MPI-level transfer is 1 eager message or an RTS+CTS+DATA
        // triple; count MPI-level deliveries via transport tags is complex,
        // so assert the lower bound: at least one transport delivery per
        // logical send.
        let delivered = world.sim().stats().messages_delivered - before;
        prop_assert!(delivered >= expected as u64, "{} < {}", delivered, expected);
    }

    /// Forcing everything eager vs everything rendezvous changes timing but
    /// not completion: both drain fully for any message size.
    #[test]
    fn protocol_choice_does_not_affect_completion(
        bytes in 100u64..200_000,
        seed in 0u64..500,
    ) {
        let n = 4;
        let progs = AllToAllAlgorithm::DirectExchange.programs(n, bytes);
        let eager_world = MpiConfig {
            eager_threshold: u64::MAX,
            ..MpiConfig::default()
        };
        let rendezvous_world = MpiConfig {
            eager_threshold: 0,
            ..MpiConfig::default()
        };
        let mut w1 = star_world(n, eager_world, seed);
        let r1 = w1.run(progs.clone());
        let mut w2 = star_world(n, rendezvous_world, seed);
        let r2 = w2.run(progs);
        prop_assert!(r1.duration_secs() > 0.0);
        prop_assert!(r2.duration_secs() > 0.0);
        // Rendezvous pays handshakes: it can never be faster than eager by
        // more than jitter noise on an idle star network.
        prop_assert!(r2.duration_secs() > r1.duration_secs() * 0.5);
    }

    /// Ping-pong half-RTT grows monotonically with size for any reasonable
    /// overhead configuration.
    #[test]
    fn pingpong_monotone_in_size(
        overhead_us in 1u64..50,
        seed in 0u64..500,
    ) {
        let mpi = MpiConfig {
            send_overhead_ns: overhead_us * 1000,
            recv_overhead_ns: overhead_us * 1000,
            overhead_jitter_ns: 0,
            ..MpiConfig::default()
        };
        let mut world = star_world(2, mpi, seed);
        let points = ping_pong(&mut world, 0, 1, &[1_000, 100_000, 1_000_000], 1);
        prop_assert!(points[0].half_rtt_secs < points[1].half_rtt_secs);
        prop_assert!(points[1].half_rtt_secs < points[2].half_rtt_secs);
    }

    /// Barriers synchronize: after a barrier, no rank's next operation
    /// starts before every rank reached it.
    #[test]
    fn barrier_is_a_synchronization_point(
        early_work in 10_000u64..500_000,
        seed in 0u64..500,
    ) {
        let n = 4;
        // Rank 0 does a large send to rank 1 before the barrier; ranks 2,3
        // hit the barrier immediately. All finish within a whisker of each
        // other after the barrier.
        let programs = vec![
            vec![Op::send(1, early_work), Op::Barrier],
            vec![Op::recv(0), Op::Barrier],
            vec![Op::Barrier],
            vec![Op::Barrier],
        ];
        let mut world = star_world(n, MpiConfig::default(), seed);
        let result = world.run(programs);
        let min = result.finished.iter().min().unwrap();
        let max = result.finished.iter().max().unwrap();
        prop_assert!(max.since(*min) < 2_000_000, "spread {} ns", max.since(*min));
    }
}
