//! The run registry: every submitted run's lifecycle, progress log and
//! final report, with TTL-based eviction of completed entries.
//!
//! A [`Run`] is shared between the HTTP handlers (status polls, event
//! streams, cancellation) and the session worker executing it, so its
//! mutable state lives behind one mutex with a condvar for the two
//! blocking consumers: event streamers waiting for the next progress
//! line and anything waiting for completion. Ids are a plain counter —
//! they identify, they do not authenticate.

use contention_scenario::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Where a run is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPhase {
    /// Admitted, waiting for a session worker.
    Queued,
    /// A session worker is executing it.
    Running,
    /// Finished (see [`RunOutcome`]); eligible for TTL eviction.
    Done,
}

impl RunPhase {
    /// The stable name rendered in status documents.
    pub fn name(self) -> &'static str {
        match self {
            RunPhase::Queued => "queued",
            RunPhase::Running => "running",
            RunPhase::Done => "done",
        }
    }
}

/// How a finished run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Every cell completed; `json` is the rendered report document.
    Ok {
        /// The report, rendered as JSON.
        json: String,
    },
    /// The report exists but carries non-`ok` rows (supervision limits,
    /// deadlocks, panics) — and the run was *not* cancelled.
    Partial {
        /// The report, rendered as JSON.
        json: String,
    },
    /// The run was cancelled. A cancellation that landed mid-run still
    /// produced a partial report with `cancelled` rows; one that landed
    /// before anything started has none.
    Cancelled {
        /// The partial report, when the run got far enough to have one.
        json: Option<String>,
    },
    /// The run failed before producing a report.
    Failed {
        /// The session's error, human-readable.
        error: String,
    },
}

impl RunOutcome {
    /// The stable name rendered in status documents.
    pub fn name(&self) -> &'static str {
        match self {
            RunOutcome::Ok { .. } => "ok",
            RunOutcome::Partial { .. } => "partial",
            RunOutcome::Cancelled { .. } => "cancelled",
            RunOutcome::Failed { .. } => "failed",
        }
    }

    /// The rendered report document, when this outcome carries one.
    pub fn report_json(&self) -> Option<&str> {
        match self {
            RunOutcome::Ok { json } | RunOutcome::Partial { json } => Some(json),
            RunOutcome::Cancelled { json } => json.as_deref(),
            RunOutcome::Failed { .. } => None,
        }
    }
}

/// The mutable half of a [`Run`].
#[derive(Debug)]
pub struct RunState {
    /// Lifecycle phase.
    pub phase: RunPhase,
    /// Set exactly once, when `phase` becomes [`RunPhase::Done`].
    pub outcome: Option<RunOutcome>,
    /// Progress log: one JSON line per `RunEvent`, in arrival order.
    pub events: Vec<String>,
    /// True once no further events can arrive.
    pub events_closed: bool,
    /// When the run completed, for TTL eviction.
    pub finished_at: Option<Instant>,
}

/// One submitted run, shared between HTTP handlers and its worker.
#[derive(Debug)]
pub struct Run {
    /// Registry-assigned id.
    pub id: u64,
    /// The scenario to execute (already validated at admission).
    pub spec: ScenarioSpec,
    /// Per-request supervision limits.
    pub limits: GuardLimits,
    /// Base seed for this run.
    pub seed: u64,
    /// Predictor model for this run.
    pub model: ModelKind,
    /// Cancellation handle — `DELETE /v1/runs/{id}` fires it; the
    /// session polls it at engine preemption points.
    pub cancel: CancelToken,
    state: Mutex<RunState>,
    progress: Condvar,
}

impl Run {
    fn new(id: u64, spec: ScenarioSpec, limits: GuardLimits, seed: u64, model: ModelKind) -> Self {
        Run {
            id,
            spec,
            limits,
            seed,
            model,
            cancel: CancelToken::new(),
            state: Mutex::new(RunState {
                phase: RunPhase::Queued,
                outcome: None,
                events: Vec::new(),
                events_closed: false,
                finished_at: None,
            }),
            progress: Condvar::new(),
        }
    }

    /// Locks and returns the mutable state.
    pub fn state(&self) -> MutexGuard<'_, RunState> {
        self.state.lock().expect("run state lock")
    }

    /// Marks the run running.
    pub fn mark_running(&self) {
        self.state().phase = RunPhase::Running;
        self.progress.notify_all();
    }

    /// Appends one progress line and wakes streamers.
    pub fn push_event(&self, line: String) {
        self.state().events.push(line);
        self.progress.notify_all();
    }

    /// Marks the run done with `outcome`, closes the event log and wakes
    /// every waiter.
    pub fn finish(&self, outcome: RunOutcome) {
        let mut st = self.state();
        st.phase = RunPhase::Done;
        st.outcome = Some(outcome);
        st.events_closed = true;
        st.finished_at = Some(Instant::now());
        drop(st);
        self.progress.notify_all();
    }

    /// Blocks until events beyond `from` exist or the log closes;
    /// returns the new lines and whether the log is closed. A closed log
    /// with no new lines returns `(empty, true)` immediately.
    pub fn wait_events(&self, from: usize) -> (Vec<String>, bool) {
        let mut st = self.state();
        loop {
            if st.events.len() > from || st.events_closed {
                let lines = st.events[from.min(st.events.len())..].to_vec();
                return (lines, st.events_closed);
            }
            let (next, _timeout) = self
                .progress
                .wait_timeout(st, Duration::from_secs(1))
                .expect("run state lock");
            st = next;
        }
    }

    /// Blocks until the run completes; returns its outcome.
    pub fn wait_done(&self) -> RunOutcome {
        let mut st = self.state();
        loop {
            if let Some(outcome) = &st.outcome {
                return outcome.clone();
            }
            let (next, _timeout) = self
                .progress
                .wait_timeout(st, Duration::from_secs(1))
                .expect("run state lock");
            st = next;
        }
    }
}

/// Id-ordered map of every live run, plus the eviction policy.
#[derive(Debug)]
pub struct RunRegistry {
    runs: Mutex<BTreeMap<u64, Arc<Run>>>,
    next_id: AtomicU64,
    ttl: Duration,
}

impl RunRegistry {
    /// An empty registry whose completed entries live for `ttl` after
    /// finishing.
    pub fn new(ttl: Duration) -> Self {
        RunRegistry {
            runs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            ttl,
        }
    }

    /// Creates and registers a run.
    pub fn create(
        &self,
        spec: ScenarioSpec,
        limits: GuardLimits,
        seed: u64,
        model: ModelKind,
    ) -> Arc<Run> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let run = Arc::new(Run::new(id, spec, limits, seed, model));
        self.runs
            .lock()
            .expect("registry lock")
            .insert(id, Arc::clone(&run));
        run
    }

    /// Looks a run up, evicting it instead when its TTL has lapsed (the
    /// caller sees `None`, exactly as if a sweep had already removed it).
    pub fn get(&self, id: u64) -> Option<Arc<Run>> {
        let mut runs = self.runs.lock().expect("registry lock");
        let run = runs.get(&id).cloned()?;
        if self.expired(&run) {
            runs.remove(&id);
            return None;
        }
        Some(run)
    }

    /// Removes every completed entry older than the TTL; returns how
    /// many were evicted.
    pub fn evict_expired(&self) -> usize {
        let mut runs = self.runs.lock().expect("registry lock");
        let before = runs.len();
        runs.retain(|_, run| !self.expired(run));
        before - runs.len()
    }

    /// Every live run, id-ordered.
    pub fn all(&self) -> Vec<Arc<Run>> {
        self.runs
            .lock()
            .expect("registry lock")
            .values()
            .cloned()
            .collect()
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.runs.lock().expect("registry lock").len()
    }

    /// True when no runs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn expired(&self, run: &Run) -> bool {
        run.state()
            .finished_at
            .is_some_and(|at| at.elapsed() >= self.ttl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_scenario::prelude::ScenarioBuilder;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioBuilder::new("reg-test")
            .single_switch(2, LinkSpec::default(), SwitchSpec::default())
            .uniform("direct")
            .nodes([2])
            .message_bytes([1024])
            .build()
            .expect("valid spec")
    }

    fn registry_with_run(ttl: Duration) -> (RunRegistry, Arc<Run>) {
        let reg = RunRegistry::new(ttl);
        let run = reg.create(tiny_spec(), GuardLimits::default(), 42, ModelKind::Med);
        (reg, run)
    }

    #[test]
    fn lifecycle_and_event_log() {
        let (reg, run) = registry_with_run(Duration::from_secs(60));
        assert_eq!(run.id, 1);
        assert_eq!(run.state().phase, RunPhase::Queued);
        run.mark_running();
        run.push_event("{\"event\":\"batch-started\"}".to_string());
        let (lines, closed) = run.wait_events(0);
        assert_eq!(lines.len(), 1);
        assert!(!closed);
        run.finish(RunOutcome::Ok {
            json: "{}".to_string(),
        });
        let (lines, closed) = run.wait_events(1);
        assert!(lines.is_empty());
        assert!(closed);
        assert_eq!(run.wait_done().name(), "ok");
        assert!(reg.get(1).is_some(), "fresh completion is not evicted");
    }

    #[test]
    fn ttl_evicts_completed_runs_only() {
        let (reg, run) = registry_with_run(Duration::ZERO);
        // Unfinished runs never expire, even at TTL zero.
        assert_eq!(reg.evict_expired(), 0);
        assert!(reg.get(run.id).is_some());
        run.finish(RunOutcome::Failed {
            error: "x".to_string(),
        });
        // Lookup-side eviction: the lapsed entry vanishes on access.
        assert!(reg.get(run.id).is_none());
        assert!(reg.is_empty());
        // Sweep-side eviction on a second registry.
        let (reg2, run2) = registry_with_run(Duration::ZERO);
        run2.finish(RunOutcome::Cancelled { json: None });
        assert_eq!(reg2.evict_expired(), 1);
        assert_eq!(reg2.len(), 0);
    }

    #[test]
    fn outcome_report_json_accessors() {
        let ok = RunOutcome::Ok {
            json: "{\"a\":1}".to_string(),
        };
        assert_eq!(ok.report_json(), Some("{\"a\":1}"));
        assert_eq!(RunOutcome::Cancelled { json: None }.report_json(), None);
        assert_eq!(
            RunOutcome::Failed {
                error: "e".to_string()
            }
            .report_json(),
            None
        );
    }
}
