//! The `ctnd` binary: flag parsing, signal wiring, and the
//! wait-for-shutdown loop around [`ctnd::Daemon`].
//!
//! Exit codes: `0` clean shutdown (including signal-triggered drains),
//! `1` runtime failure (bind error), `2` usage error.

use ctnd::{signal, Daemon, DaemonConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "ctnd — simulation-serving daemon

USAGE:
    ctnd [OPTIONS]

OPTIONS:
    --addr A                    Listen address (default 127.0.0.1:7411; port 0
                                binds an ephemeral port)
    --run-workers N             Sessions executing in parallel (default 2)
    --session-workers N         Worker threads inside each session (default 2;
                                reports are byte-identical for any value)
    --queue-depth N             Queued-run ceiling; beyond it POST /v1/runs
                                answers 429 + Retry-After (default 16)
    --ttl-secs N                Completed-report retention (default 600)
    --seed S                    Base seed for requests that send none
                                (default 42)
    --default-deadline-secs N   Wall-clock deadline applied to requests that
                                send no deadline_ms (default: none — unlimited
                                runs keep reports byte-identical to ctnsim)
    --conn-workers N            HTTP connection threads (default 8)
    --max-body-bytes N          Request-body cap (default 1048576)
    --help                      Show this help

SIGTERM or ctrl-c drains gracefully: admission stops (503), queued and
in-flight runs are cancelled, their partial reports flush, exit 0.
";

fn parse_args(args: &[String]) -> Result<Option<DaemonConfig>, String> {
    let mut cfg = DaemonConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .clone();
        let numeric = |what: &str| -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("{what} must be a non-negative integer, got {value:?}"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value,
            "--run-workers" => cfg.run_workers = numeric("--run-workers")? as usize,
            "--session-workers" => cfg.session_workers = numeric("--session-workers")? as usize,
            "--queue-depth" => cfg.queue_depth = numeric("--queue-depth")? as usize,
            "--ttl-secs" => cfg.ttl = Duration::from_secs(numeric("--ttl-secs")?),
            "--seed" => cfg.base_seed = numeric("--seed")?,
            "--default-deadline-secs" => {
                cfg.default_deadline =
                    Some(Duration::from_secs(numeric("--default-deadline-secs")?))
            }
            "--conn-workers" => cfg.conn_workers = numeric("--conn-workers")? as usize,
            "--max-body-bytes" => cfg.max_body_bytes = numeric("--max-body-bytes")? as usize,
            _ => return Err(format!("unknown flag {flag:?}")),
        }
    }
    Ok(Some(cfg))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(Some(cfg)) => cfg,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("ctnd: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    signal::install_handlers();
    let daemon = match Daemon::spawn(cfg.clone()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ctnd: failed to start on {}: {e}", cfg.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "ctnd: listening on http://{} ({} run worker(s), queue depth {})",
        daemon.addr(),
        cfg.run_workers,
        cfg.queue_depth
    );
    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("ctnd: shutdown requested, draining");
    daemon.shutdown();
    eprintln!("ctnd: drained cleanly");
    ExitCode::SUCCESS
}
