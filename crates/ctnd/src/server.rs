//! The HTTP front end: acceptor, bounded connection pool, router and
//! wire-format parsing.
//!
//! ## API
//!
//! | Method & path              | Purpose                                        |
//! |----------------------------|------------------------------------------------|
//! | `POST /v1/runs`            | Submit a spec (TOML body, or a JSON envelope)  |
//! | `GET /v1/runs/{id}`        | Status + embedded report once done             |
//! | `GET /v1/runs/{id}/report` | The raw report document, byte-exact            |
//! | `GET /v1/runs/{id}/events` | Chunked NDJSON stream of progress events       |
//! | `DELETE /v1/runs/{id}`     | Cancel (mid-run ⇒ partial report)              |
//! | `GET /healthz`             | Liveness (`ok` / `draining`)                   |
//! | `GET /metrics`             | Daemon counters + aggregated session metrics   |
//!
//! A JSON submission is an object with `scenario` (builtin name) *or*
//! `spec_toml` (inline TOML document), plus optional `deadline_ms`,
//! `event_budget`, `sim_horizon_ms`, `seed`, `model` and `backend`. A
//! raw TOML body takes the same options as query parameters. Unknown
//! JSON fields are rejected — admission control starts with the
//! envelope.

use crate::exec::{AdmitError, Executive};
use crate::http::{self, ChunkedWriter, HttpError, Request, Response};
use crate::json::{self, Value};
use crate::registry::Run;
use contention_obs::json as emit;
use contention_scenario::prelude::*;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Pending (accepted, unserved) connections beyond this are answered
/// 503 by the acceptor itself.
const CONN_BACKLOG: usize = 128;

/// Per-connection socket timeouts (event streams re-arm on every
/// chunk, so a live stream never trips this).
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// The bounded pool of connection-serving threads.
#[derive(Debug)]
pub struct ConnPool {
    queue: Mutex<Vec<TcpStream>>,
    available: Condvar,
    stop: AtomicBool,
}

impl ConnPool {
    /// A pool with empty backlog.
    pub fn new() -> Arc<Self> {
        Arc::new(ConnPool {
            queue: Mutex::new(Vec::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
        })
    }

    /// Starts `workers` serving threads.
    pub fn spawn_workers(
        self: &Arc<Self>,
        exec: &Arc<Executive>,
        workers: usize,
    ) -> Vec<JoinHandle<()>> {
        (0..workers)
            .map(|i| {
                let pool = Arc::clone(self);
                let exec = Arc::clone(exec);
                std::thread::Builder::new()
                    .name(format!("ctnd-conn-{i}"))
                    .spawn(move || pool.worker_loop(&exec))
                    .expect("spawn connection worker")
            })
            .collect()
    }

    /// Hands a fresh connection to the pool; answers 503 inline when
    /// the backlog is full.
    pub fn dispatch(&self, stream: TcpStream) {
        let mut queue = self.queue.lock().expect("conn queue lock");
        if queue.len() >= CONN_BACKLOG {
            drop(queue);
            let mut stream = stream;
            let _ = Response::json(
                503,
                "{\"error\": \"connection backlog full\"}\n".to_string(),
            )
            .write_to(&mut stream);
            return;
        }
        queue.push(stream);
        drop(queue);
        self.available.notify_one();
    }

    /// Stops the workers once the backlog drains.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.available.notify_all();
    }

    fn worker_loop(self: Arc<Self>, exec: &Arc<Executive>) {
        loop {
            let stream = {
                let mut queue = self.queue.lock().expect("conn queue lock");
                loop {
                    if let Some(stream) = queue.pop() {
                        break stream;
                    }
                    if self.stop.load(Ordering::Acquire) {
                        return;
                    }
                    let (next, _timeout) = self
                        .available
                        .wait_timeout(queue, Duration::from_millis(200))
                        .expect("conn queue lock");
                    queue = next;
                }
            };
            serve_connection(stream, exec);
        }
    }
}

/// Serves one connection: parse, route, respond, close.
fn serve_connection(mut stream: TcpStream, exec: &Arc<Executive>) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let request = match http::read_request(&mut stream, exec.cfg.max_body_bytes) {
        Ok(req) => req,
        Err(HttpError::BadRequest(detail)) => {
            let _ = Response::json(400, error_body(&detail)).write_to(&mut stream);
            return;
        }
        Err(HttpError::BodyTooLarge) => {
            let _ = Response::json(413, error_body("request body too large")).write_to(&mut stream);
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    exec.note_request();
    route(request, &mut stream, exec);
}

/// `{"error": "..."}` with a trailing newline (curl-friendly).
fn error_body(detail: &str) -> String {
    format!("{{\"error\": {}}}\n", emit::string(detail))
}

fn route(req: Request, stream: &mut TcpStream, exec: &Arc<Executive>) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let response = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(
            200,
            format!(
                "{{\"status\": \"{}\"}}\n",
                if exec.is_draining() { "draining" } else { "ok" }
            ),
        ),
        ("GET", ["metrics"]) => Response::json(200, exec.metrics_json()),
        ("POST", ["v1", "runs"]) => handle_submit(&req, exec),
        ("GET", ["v1", "runs", id]) => with_run(exec, id, status_response),
        ("GET", ["v1", "runs", id, "report"]) => with_run(exec, id, report_response),
        ("GET", ["v1", "runs", id, "events"]) => {
            // Streaming: takes over the stream, no Response to write.
            match lookup(exec, id) {
                Ok(run) => {
                    stream_events(&run, stream);
                    return;
                }
                Err(resp) => resp,
            }
        }
        ("DELETE", ["v1", "runs", id]) => with_run(exec, id, |run| {
            run.cancel.cancel();
            let phase = run.state().phase;
            Response::json(
                202,
                format!(
                    "{{\"run_id\": \"{}\", \"status\": {}, \"cancelling\": true}}\n",
                    run.id,
                    emit::string(phase.name())
                ),
            )
        }),
        (_, ["healthz" | "metrics"]) | (_, ["v1", "runs"]) | (_, ["v1", "runs", ..]) => {
            Response::json(405, error_body("method not allowed"))
        }
        _ => Response::json(404, error_body("not found")),
    };
    let _ = response.write_to(stream);
}

/// Parses `{id}` and looks the run up; `Err` carries the 400/404.
fn lookup(exec: &Arc<Executive>, id: &str) -> Result<Arc<Run>, Response> {
    let id: u64 = id
        .parse()
        .map_err(|_| Response::json(400, error_body("run id must be a decimal integer")))?;
    exec.registry
        .get(id)
        .ok_or_else(|| Response::json(404, error_body("no such run (completed runs expire)")))
}

fn with_run(exec: &Arc<Executive>, id: &str, f: impl FnOnce(&Run) -> Response) -> Response {
    match lookup(exec, id) {
        Ok(run) => f(&run),
        Err(resp) => resp,
    }
}

/// `GET /v1/runs/{id}` — status envelope, embedding the report (as raw
/// JSON, not a string) once the run is done.
fn status_response(run: &Run) -> Response {
    let st = run.state();
    let mut body = String::from("{");
    body.push_str(&format!("\"run_id\": \"{}\", ", run.id));
    body.push_str(&format!("\"scenario\": {}, ", emit::string(&run.spec.name)));
    body.push_str(&format!("\"status\": {}, ", emit::string(st.phase.name())));
    body.push_str(&format!("\"events\": {}, ", st.events.len()));
    match &st.outcome {
        None => body.push_str("\"outcome\": null, \"report\": null"),
        Some(outcome) => {
            body.push_str(&format!("\"outcome\": {}, ", emit::string(outcome.name())));
            if let crate::registry::RunOutcome::Failed { error } = outcome {
                body.push_str(&format!("\"error\": {}, ", emit::string(error)));
            }
            match outcome.report_json() {
                Some(json) => body.push_str(&format!("\"report\": {json}")),
                None => body.push_str("\"report\": null"),
            }
        }
    }
    body.push_str("}\n");
    Response::json(200, body)
}

/// `GET /v1/runs/{id}/report` — the rendered report document, byte-for-
/// byte what `ctnsim run --format json` emits for the same spec, seed,
/// model and limits.
fn report_response(run: &Run) -> Response {
    let st = run.state();
    match &st.outcome {
        None => Response::json(
            409,
            error_body("run not finished (poll /v1/runs/{id} or stream /events)"),
        ),
        Some(outcome) => match outcome.report_json() {
            Some(json) => Response::json(200, json.to_string()),
            None => Response::json(
                409,
                error_body(&format!("run ended {} with no report", outcome.name())),
            ),
        },
    }
}

/// `GET /v1/runs/{id}/events` — replays the progress log, then follows
/// it live until the run completes; chunked so each line is visible as
/// it happens.
fn stream_events(run: &Run, stream: &mut TcpStream) {
    let mut writer = match ChunkedWriter::start(stream, 200, "application/x-ndjson") {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut from = 0usize;
    loop {
        let (lines, closed) = run.wait_events(from);
        for line in &lines {
            let mut framed = line.clone();
            framed.push('\n');
            if writer.chunk(framed.as_bytes()).is_err() {
                return; // subscriber went away
            }
        }
        from += lines.len();
        if closed && lines.is_empty() {
            break;
        }
    }
    let outcome = run
        .state()
        .outcome
        .as_ref()
        .map(|o| o.name())
        .unwrap_or("unknown");
    let _ = writer.chunk(
        format!(
            "{{\"event\": \"run-finished\", \"outcome\": {}}}\n",
            emit::string(outcome)
        )
        .as_bytes(),
    );
    let _ = writer.finish();
}

/// `POST /v1/runs` — parse, validate, admit.
fn handle_submit(req: &Request, exec: &Arc<Executive>) -> Response {
    let submission = match parse_submission(req, exec.cfg.base_seed) {
        Ok(s) => s,
        Err(detail) => return Response::json(400, error_body(&detail)),
    };
    match exec.submit(
        submission.spec,
        submission.limits,
        submission.seed,
        submission.model,
    ) {
        Ok((run, depth)) => Response::json(
            202,
            format!(
                "{{\"run_id\": \"{}\", \"status\": \"queued\", \"location\": \
                 \"/v1/runs/{}\", \"queue_depth\": {}}}\n",
                run.id, run.id, depth
            ),
        ),
        Err(AdmitError::QueueFull { depth }) => Response::json(
            429,
            format!("{{\"error\": \"run queue full\", \"queue_depth\": {depth}}}\n"),
        )
        .with_header("Retry-After", "1"),
        Err(AdmitError::Draining) => {
            Response::json(503, error_body("daemon is draining, not admitting runs"))
        }
    }
}

/// A fully parsed, validated submission.
struct Submission {
    spec: ScenarioSpec,
    limits: GuardLimits,
    seed: u64,
    model: ModelKind,
}

/// JSON envelope fields (anything else is rejected).
const JSON_FIELDS: &[&str] = &[
    "scenario",
    "spec_toml",
    "deadline_ms",
    "event_budget",
    "sim_horizon_ms",
    "seed",
    "model",
    "backend",
];

fn parse_submission(req: &Request, default_seed: u64) -> Result<Submission, String> {
    let body = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
    if body.trim().is_empty() {
        return Err("empty body: send a TOML spec or a JSON envelope".to_string());
    }
    let is_json = match req.header("content-type") {
        Some(ct) if ct.to_ascii_lowercase().contains("json") => true,
        Some(ct) if ct.to_ascii_lowercase().contains("toml") => false,
        _ => body.trim_start().starts_with('{'),
    };
    if is_json {
        parse_json_submission(body, default_seed)
    } else {
        parse_toml_submission(body, req, default_seed)
    }
}

fn parse_json_submission(body: &str, default_seed: u64) -> Result<Submission, String> {
    let doc = json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    if !matches!(doc, Value::Object(_)) {
        return Err("JSON body must be an object".to_string());
    }
    if let Some(unknown) = doc.keys().iter().find(|k| !JSON_FIELDS.contains(k)) {
        return Err(format!(
            "unknown field {unknown:?} (expected one of {JSON_FIELDS:?})"
        ));
    }
    let mut spec = match (doc.get("scenario"), doc.get("spec_toml")) {
        (Some(_), Some(_)) => {
            return Err("send either \"scenario\" or \"spec_toml\", not both".to_string())
        }
        (Some(name), None) => {
            let name = name
                .as_str()
                .ok_or_else(|| "\"scenario\" must be a string".to_string())?;
            registry::by_name(name).ok_or_else(|| format!("unknown builtin scenario {name:?}"))?
        }
        (None, Some(toml)) => {
            let text = toml
                .as_str()
                .ok_or_else(|| "\"spec_toml\" must be a string".to_string())?;
            ScenarioSpec::from_toml_str(text).map_err(|e| format!("invalid spec: {e}"))?
        }
        (None, None) => {
            return Err("missing \"scenario\" (builtin name) or \"spec_toml\"".to_string())
        }
    };
    if let Some(backend) = doc.get("backend") {
        apply_backend(&mut spec, backend.as_str().unwrap_or_default())?;
    }
    let limits = GuardLimits {
        deadline: field_ms(&doc, "deadline_ms")?,
        event_budget: field_u64(&doc, "event_budget")?,
        sim_horizon: field_ms(&doc, "sim_horizon_ms")?,
    };
    let seed = field_u64(&doc, "seed")?.unwrap_or(default_seed);
    let model = match doc.get("model") {
        None => ModelKind::Med,
        Some(v) => parse_model(v.as_str().unwrap_or_default())?,
    };
    Ok(Submission {
        spec,
        limits,
        seed,
        model,
    })
}

fn parse_toml_submission(
    body: &str,
    req: &Request,
    default_seed: u64,
) -> Result<Submission, String> {
    let mut spec =
        ScenarioSpec::from_toml_str(body).map_err(|e| format!("invalid TOML spec: {e}"))?;
    if let Some(backend) = req.query_param("backend") {
        apply_backend(&mut spec, backend)?;
    }
    let limits = GuardLimits {
        deadline: query_ms(req, "deadline_ms")?,
        event_budget: query_u64(req, "event_budget")?,
        sim_horizon: query_ms(req, "sim_horizon_ms")?,
    };
    let seed = query_u64(req, "seed")?.unwrap_or(default_seed);
    let model = match req.query_param("model") {
        None => ModelKind::Med,
        Some(name) => parse_model(name)?,
    };
    Ok(Submission {
        spec,
        limits,
        seed,
        model,
    })
}

fn apply_backend(spec: &mut ScenarioSpec, name: &str) -> Result<(), String> {
    let backend = Backend::parse(name)
        .ok_or_else(|| format!("unknown backend {name:?} (expected packet or fluid)"))?;
    spec.backend = backend;
    spec.validate()
        .map_err(|e| format!("spec invalid under backend {name:?}: {e}"))
}

fn parse_model(name: &str) -> Result<ModelKind, String> {
    ModelKind::parse(name)
        .ok_or_else(|| format!("unknown model {name:?} (expected med, signature or saturation)"))
}

fn field_u64(doc: &Value, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

fn field_ms(doc: &Value, key: &str) -> Result<Option<Duration>, String> {
    Ok(field_u64(doc, key)?.map(Duration::from_millis))
}

fn query_u64(req: &Request, key: &str) -> Result<Option<u64>, String> {
    match req.query_param(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("query parameter {key:?} must be a non-negative integer")),
    }
}

fn query_ms(req: &Request, key: &str) -> Result<Option<Duration>, String> {
    Ok(query_u64(req, key)?.map(Duration::from_millis))
}

/// The acceptor loop: non-blocking accept so it can poll the stop flag,
/// sweep expired runs while idle, and hand live connections to the
/// pool.
pub fn accept_loop(
    listener: std::net::TcpListener,
    pool: Arc<ConnPool>,
    exec: Arc<Executive>,
    stop: Arc<AtomicBool>,
) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => pool.dispatch(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                exec.registry.evict_expired();
                // 1ms poll: bounds idle accept latency (three round
                // trips — submit, events, report — pay it each) while
                // keeping the idle loop negligible.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}
