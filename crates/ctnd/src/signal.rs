//! SIGTERM / SIGINT → one process-wide atomic flag.
//!
//! The standard library has no signal API and the vendored-deps
//! constraint rules out the `signal-hook`/`libc` crates, so this module
//! declares the one C function it needs (`signal(2)`) itself. The
//! handler does the only thing an async-signal-safe handler may do
//! here: a relaxed-free atomic store the main thread polls. This is the
//! single `unsafe` in the workspace's non-vendored code; everything
//! else keeps `#![forbid(unsafe_code)]`.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM/SIGINT arrived or [`request_shutdown`] ran.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trips the flag programmatically (tests, non-unix fallbacks).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    use std::sync::atomic::Ordering;

    /// `void (*)(int)` — the handler type `signal(2)` takes.
    type SigHandler = extern "C" fn(i32);

    extern "C" {
        /// POSIX `signal(2)`. The return value (the previous handler)
        /// is pointer-sized; this code never inspects it.
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe by construction.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Installs the SIGTERM/SIGINT handlers (no-op on non-unix targets,
/// where only [`request_shutdown`] trips the flag).
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_trips_the_flag() {
        install_handlers();
        // The flag is process-global and one-way, so this test only
        // asserts the set-then-observe direction.
        request_shutdown();
        assert!(shutdown_requested());
    }
}
