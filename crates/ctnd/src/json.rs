//! A minimal JSON value parser for request bodies.
//!
//! The workspace emits JSON by hand (`contention_obs::json`) but never
//! had to *read* any until the daemon accepted `POST /v1/runs` bodies.
//! This is a strict recursive-descent parser over the RFC 8259 grammar —
//! the same rules the test-side `json_lint` checker enforces (no `NaN`,
//! no leading zeros, no trailing garbage, escapes validated) — that
//! additionally builds a [`Value`] tree. It stays intentionally tiny:
//! the daemon's request schema is a flat object of scalars.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always finite; the grammar has no NaN/Infinity).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered `(key, value)` pairs; lookups take the first
    /// match.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object, or `None` for other variants / missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys, in document order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Value::Object(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// String payload, or `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, or `None` for other variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as a non-negative integer; `None` when the value
    /// is not a number, is negative, or has a fractional part.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }
}

/// Parses one complete JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

/// Nesting beyond this depth is rejected (the daemon's schema is flat;
/// the cap bounds stack use on hostile bodies).
const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of document".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // {
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let unit = parse_hex4(bytes, *pos)?;
                        *pos += 3; // the common += 1 below covers the 4th digit
                        let ch = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("unpaired surrogate".to_string());
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".to_string());
                            }
                            *pos += 6;
                            let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(code).ok_or("invalid surrogate pair")?
                        } else if (0xDC00..0xE000).contains(&unit) {
                            return Err("unpaired low surrogate".to_string());
                        } else {
                            char::from_u32(unit).ok_or("invalid \\u escape")?
                        };
                        out.push(ch);
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(c) if *c < 0x20 => {
                return Err(format!("raw control character at byte {pos}"));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    if at + 4 > bytes.len() {
        return Err("truncated \\u escape".to_string());
    }
    let hex = std::str::from_utf8(&bytes[at..at + 4]).map_err(|e| e.to_string())?;
    u32::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape {hex:?}"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: one zero, or a nonzero digit run (no leading zeros).
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return Err(format!("invalid number at byte {start}")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(format!("invalid fraction at byte {pos}"));
        }
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(format!("invalid exponent at byte {pos}"));
        }
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("unparseable number {text:?}"))?;
    Ok(Value::Number(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_body() {
        let v = parse(r#"{"scenario": "incast-burst", "deadline_ms": 1500, "seed": 7}"#).unwrap();
        assert_eq!(v.get("scenario").unwrap().as_str(), Some("incast-burst"));
        assert_eq!(v.get("deadline_ms").unwrap().as_u64(), Some(1500));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.keys(), vec!["scenario", "deadline_ms", "seed"]);
    }

    #[test]
    fn parses_nesting_escapes_and_literals() {
        let v =
            parse(r#"{"a": [1, -2.5, 1e3, true, false, null], "s": "q\"\n\u0041\uD83D\uDE00"}"#)
                .unwrap();
        let Value::Array(items) = v.get("a").unwrap() else {
            panic!("array expected");
        };
        assert_eq!(items.len(), 6);
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_f64(), Some(1000.0));
        assert_eq!(items[1].as_u64(), None, "fractional is not a u64");
        assert_eq!(v.get("s").unwrap().as_str(), Some("q\"\nA\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\": 1,}",
            "[1 2]",
            "NaN",
            "Infinity",
            "01",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\u{0009}ctl-ok-escaped?\"", // raw tab inside a string
            "{\"a\": 1} trailing",
            "\"\\uD800\"", // unpaired surrogate
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn first_key_wins_on_duplicates() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_u64(), Some(1));
    }
}
