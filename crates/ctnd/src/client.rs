//! A minimal blocking HTTP/1.1 client — for the daemon's own tests,
//! benches and smoke checks, not a general-purpose client.
//!
//! One request per connection (the daemon answers `Connection: close`),
//! `Content-Length` request framing, and response bodies read to EOF
//! with chunked transfer decoding when the server streamed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One decoded response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers as `(lower-case name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The body, chunked-decoded when the server streamed it.
    pub body: String,
}

impl HttpResponse {
    /// First header with this lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one request and reads the full response (blocking until
/// the server closes — for `/events` that is when the run finishes).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // Generous cap: a queued run behind a long one can keep /events
    // quiet for a while; the daemon's own keep-alive is the 1s condvar
    // recheck, so a healthy stream never stays silent longer than that.
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: ctnd\r\nContent-Length: {}\r\n",
        body.len()
    )?;
    if let Some(ct) = content_type {
        write!(stream, "Content-Type: {ct}\r\n")?;
    }
    stream.write_all(b"Connection: close\r\n\r\n")?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("no header terminator in response")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "response head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body_bytes = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        decode_chunked(body_bytes)?
    } else {
        body_bytes.to_vec()
    };
    Ok(HttpResponse {
        status,
        headers,
        body: String::from_utf8(body).map_err(|_| "response body is not UTF-8")?,
    })
}

fn decode_chunked(mut rest: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or("truncated chunk size line")?;
        let size_line =
            std::str::from_utf8(&rest[..line_end]).map_err(|_| "chunk size is not UTF-8")?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if rest.len() < size + 2 {
            return Err("truncated chunk body".to_string());
        }
        out.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_plain_and_chunked_responses() {
        let plain =
            b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\nhi";
        let resp = parse_response(plain).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.body, "hi");

        let chunked =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nab\n\r\n2\r\ncd\r\n0\r\n\r\n";
        let resp = parse_response(chunked).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ab\ncd");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 zzz\r\n\r\n").is_err());
        assert!(
            parse_response(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n").is_err()
        );
    }
}
