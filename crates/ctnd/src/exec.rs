//! The multiplexing executive: admission control, the session worker
//! pool, and cross-run metrics aggregation.
//!
//! Concurrent HTTP submissions land in one bounded queue; `N` session
//! workers pop runs and execute each in a **fresh**
//! [`Session`](contention_scenario::prelude::Session) — fresh because a
//! `CancelToken` is one-shot (a cancelled session stays cancelled), but
//! all sharing a single [`CalibrationCache`], so a fabric calibrated
//! once is never refitted no matter which worker serves the next run on
//! it. Per-run [`GuardLimits`] keep a hostile spec from wedging a
//! worker; the report stays byte-identical to a direct `ctnsim run` of
//! the same spec because limits, seed and model are the only knobs a
//! request can turn and each is part of the determinism contract's key.

use crate::registry::{Run, RunOutcome, RunRegistry};
use contention_obs::CounterSet;
use contention_scenario::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cells retained in the aggregated metrics document. Every completed
/// run appends its per-cell telemetry; a long-lived daemon keeps the
/// most recent window and counts what it dropped (`agg_cells_dropped`
/// in `/metrics`), so truncation is never silent.
const AGG_CELLS_LIMIT: usize = 512;

/// Daemon configuration — every admission-control and execution knob.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address, e.g. `127.0.0.1:7411` (port 0 binds ephemeral).
    pub addr: String,
    /// Session workers executing runs in parallel.
    pub run_workers: usize,
    /// Worker threads *inside* each run's session (reports are
    /// byte-identical for any value).
    pub session_workers: usize,
    /// Queued-run ceiling; submissions beyond it are answered 429.
    pub queue_depth: usize,
    /// How long completed runs (and their reports) stay queryable.
    pub ttl: Duration,
    /// Base seed when a request does not send one.
    pub base_seed: u64,
    /// Wall-clock deadline applied when a request sends none. `None`
    /// (the default) leaves such runs unlimited, which keeps their
    /// reports byte-identical to `ctnsim run` defaults.
    pub default_deadline: Option<Duration>,
    /// Request-body cap in bytes.
    pub max_body_bytes: usize,
    /// Threads serving HTTP connections (an event-stream subscriber
    /// occupies one for its run's whole lifetime).
    pub conn_workers: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:7411".to_string(),
            run_workers: 2,
            session_workers: 2,
            queue_depth: 16,
            ttl: Duration::from_secs(600),
            base_seed: 42,
            default_deadline: None,
            max_body_bytes: 1 << 20,
            conn_workers: 8,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The run queue is at `queue_depth`: answer 429 + `Retry-After`.
    QueueFull {
        /// Queued runs at rejection time.
        depth: usize,
    },
    /// The daemon is draining: answer 503.
    Draining,
}

/// Lifetime counters, all monotonic (mirrored into `/metrics`).
#[derive(Debug, Default)]
struct Counters {
    http_requests: AtomicU64,
    runs_submitted: AtomicU64,
    runs_admitted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_draining: AtomicU64,
    runs_ok: AtomicU64,
    runs_partial: AtomicU64,
    runs_cancelled: AtomicU64,
    runs_failed: AtomicU64,
    agg_cells_dropped: AtomicU64,
}

/// The shared core of the daemon (HTTP handlers and workers both hold
/// an `Arc` of it).
#[derive(Debug)]
pub struct Executive {
    /// The daemon's configuration.
    pub cfg: DaemonConfig,
    /// Every submitted run.
    pub registry: RunRegistry,
    queue: Mutex<VecDeque<Arc<Run>>>,
    queue_cv: Condvar,
    cache: Arc<CalibrationCache>,
    draining: AtomicBool,
    counters: Counters,
    agg: Mutex<SessionMetrics>,
    running: AtomicU64,
    started: Instant,
}

impl Executive {
    /// A fresh executive (no workers yet — [`Executive::spawn_workers`]).
    pub fn new(cfg: DaemonConfig) -> Arc<Self> {
        Arc::new(Executive {
            registry: RunRegistry::new(cfg.ttl),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            cache: Arc::new(CalibrationCache::new()),
            draining: AtomicBool::new(false),
            counters: Counters::default(),
            agg: Mutex::new(SessionMetrics::default()),
            running: AtomicU64::new(0),
            started: Instant::now(),
        })
    }

    /// The shared calibration cache.
    pub fn cache(&self) -> Arc<CalibrationCache> {
        Arc::clone(&self.cache)
    }

    /// True once draining began.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Counts one HTTP request (any endpoint).
    pub fn note_request(&self) {
        self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Admission control: registers and enqueues a run, or rejects it.
    pub fn submit(
        self: &Arc<Self>,
        spec: ScenarioSpec,
        limits: GuardLimits,
        seed: u64,
        model: ModelKind,
    ) -> Result<(Arc<Run>, usize), AdmitError> {
        self.counters.runs_submitted.fetch_add(1, Ordering::Relaxed);
        if self.is_draining() {
            self.counters
                .rejected_draining
                .fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::Draining);
        }
        let mut limits = limits;
        if limits.deadline.is_none() {
            limits.deadline = self.cfg.default_deadline;
        }
        let mut queue = self.queue.lock().expect("run queue lock");
        if queue.len() >= self.cfg.queue_depth {
            self.counters
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::QueueFull { depth: queue.len() });
        }
        let run = self.registry.create(spec, limits, seed, model);
        queue.push_back(Arc::clone(&run));
        let depth = queue.len();
        drop(queue);
        self.counters.runs_admitted.fetch_add(1, Ordering::Relaxed);
        self.queue_cv.notify_one();
        Ok((run, depth))
    }

    /// Starts the session worker pool.
    pub fn spawn_workers(self: &Arc<Self>) -> Vec<JoinHandle<()>> {
        (0..self.cfg.run_workers)
            .map(|i| {
                let exec = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("ctnd-run-{i}"))
                    .spawn(move || exec.worker_loop())
                    .expect("spawn run worker")
            })
            .collect()
    }

    /// Stops admitting, cancels every queued and in-flight run, and
    /// wakes the workers so they drain the queue (each cancelled run
    /// still flushes its partial report through the normal completion
    /// path).
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        for run in self.registry.all() {
            run.cancel.cancel();
        }
        // Runs still in the queue belong to the registry too, but the
        // registry may have evicted nothing-in-common entries; cancel
        // the queue's view as well for good measure.
        for run in self.queue.lock().expect("run queue lock").iter() {
            run.cancel.cancel();
        }
        self.queue_cv.notify_all();
    }

    /// Worker body: pop → execute, until draining *and* the queue is
    /// empty.
    fn worker_loop(self: Arc<Self>) {
        loop {
            let run = {
                let mut queue = self.queue.lock().expect("run queue lock");
                loop {
                    if let Some(run) = queue.pop_front() {
                        break run;
                    }
                    if self.is_draining() {
                        return;
                    }
                    let (next, _timeout) = self
                        .queue_cv
                        .wait_timeout(queue, Duration::from_millis(200))
                        .expect("run queue lock");
                    queue = next;
                }
            };
            self.running.fetch_add(1, Ordering::Relaxed);
            self.execute(&run);
            self.running.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Executes one run in a fresh session sharing the daemon cache.
    fn execute(&self, run: &Run) {
        run.mark_running();
        let session = Session::builder()
            .workers(self.cfg.session_workers)
            .base_seed(run.seed)
            .model(run.model)
            .shared_cache(self.cache())
            .cancel_token(run.cancel.clone())
            .limits(run.limits)
            .build();
        let session = match session {
            Ok(s) => s,
            Err(e) => {
                self.counters.runs_failed.fetch_add(1, Ordering::Relaxed);
                run.finish(RunOutcome::Failed {
                    error: e.to_string(),
                });
                return;
            }
        };

        let mut observer = |event: RunEvent<'_>| {
            run.push_event(event_line(&event));
        };
        let result = session.run_with(&run.spec, &mut observer);

        if let Some(metrics) = session.metrics() {
            let mut agg = self.agg.lock().expect("metrics aggregate lock");
            agg.merge(&metrics);
            if agg.cells.len() > AGG_CELLS_LIMIT {
                let drop = agg.cells.len() - AGG_CELLS_LIMIT;
                agg.cells.drain(..drop);
                self.counters
                    .agg_cells_dropped
                    .fetch_add(drop as u64, Ordering::Relaxed);
            }
        }

        let outcome = match result {
            Ok(report) => {
                let json = report.render(ReportFormat::Json);
                if run.cancel.is_cancelled() {
                    self.counters.runs_cancelled.fetch_add(1, Ordering::Relaxed);
                    RunOutcome::Cancelled { json: Some(json) }
                } else if report.has_failures() {
                    self.counters.runs_partial.fetch_add(1, Ordering::Relaxed);
                    RunOutcome::Partial { json }
                } else {
                    self.counters.runs_ok.fetch_add(1, Ordering::Relaxed);
                    RunOutcome::Ok { json }
                }
            }
            Err(CtnError::Cancelled) => {
                self.counters.runs_cancelled.fetch_add(1, Ordering::Relaxed);
                RunOutcome::Cancelled { json: None }
            }
            Err(e) => {
                self.counters.runs_failed.fetch_add(1, Ordering::Relaxed);
                RunOutcome::Failed {
                    error: e.to_string(),
                }
            }
        };
        run.finish(outcome);
    }

    /// The `/metrics` document: daemon counters, lifetime cache
    /// counters of the shared calibration cache, and the aggregated
    /// per-session metrics (schema 1 documents merged with
    /// `SessionMetrics::merge`).
    pub fn metrics_json(&self) -> String {
        let queue_len = self.queue.lock().expect("run queue lock").len();
        let cache = self.cache.stats();
        let mut daemon = CounterSet::new();
        daemon.gauge("uptime_secs", self.started.elapsed().as_secs_f64());
        daemon.flag("draining", self.is_draining());
        daemon.count("queue_depth", queue_len as u64);
        daemon.count("queue_capacity", self.cfg.queue_depth as u64);
        daemon.count("runs_active", self.running.load(Ordering::Relaxed));
        daemon.count("runs_registered", self.registry.len() as u64);
        let c = &self.counters;
        daemon.count("http_requests", c.http_requests.load(Ordering::Relaxed));
        daemon.count("runs_submitted", c.runs_submitted.load(Ordering::Relaxed));
        daemon.count("runs_admitted", c.runs_admitted.load(Ordering::Relaxed));
        daemon.count(
            "rejected_queue_full",
            c.rejected_queue_full.load(Ordering::Relaxed),
        );
        daemon.count(
            "rejected_draining",
            c.rejected_draining.load(Ordering::Relaxed),
        );
        daemon.count("runs_ok", c.runs_ok.load(Ordering::Relaxed));
        daemon.count("runs_partial", c.runs_partial.load(Ordering::Relaxed));
        daemon.count("runs_cancelled", c.runs_cancelled.load(Ordering::Relaxed));
        daemon.count("runs_failed", c.runs_failed.load(Ordering::Relaxed));
        daemon.count(
            "agg_cells_dropped",
            c.agg_cells_dropped.load(Ordering::Relaxed),
        );
        daemon.count("cache_hits", cache.hits);
        daemon.count("cache_misses", cache.misses);
        daemon.count("cache_inserts", cache.inserts);
        daemon.gauge("cache_hit_rate", cache.hit_rate());

        let sessions = self
            .agg
            .lock()
            .expect("metrics aggregate lock")
            .render_json();
        format!(
            "{{\n\"ctnd_metrics_schema_version\": 1,\n\"daemon\": {},\n\"sessions\": {}}}\n",
            daemon.render_json(),
            sessions
        )
    }
}

/// Renders one streaming progress line (NDJSON — one object per line).
fn event_line(event: &RunEvent<'_>) -> String {
    use contention_obs::json;
    match event {
        RunEvent::BatchStarted { scenario, cells } => format!(
            "{{\"event\": \"batch-started\", \"scenario\": {}, \"cells\": {}}}",
            json::string(scenario),
            cells
        ),
        RunEvent::CellFinished {
            scenario,
            cell,
            completed,
            total,
            ..
        } => format!(
            "{{\"event\": \"cell-finished\", \"scenario\": {}, \"n\": {}, \"message_bytes\": {}, \
             \"status\": {}, \"completed\": {}, \"total\": {}}}",
            json::string(scenario),
            cell.n,
            cell.message_bytes,
            json::string(cell.status.name()),
            completed,
            total
        ),
        RunEvent::BatchFinished { scenario, batch } => format!(
            "{{\"event\": \"batch-finished\", \"scenario\": {}, \"cells\": {}}}",
            json::string(scenario),
            batch.cells.len()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(name: &str) -> ScenarioSpec {
        ScenarioBuilder::new(name)
            .single_switch(2, LinkSpec::default(), SwitchSpec::default())
            .uniform("direct")
            .nodes([2])
            .message_bytes([1024])
            .build()
            .expect("valid spec")
    }

    fn test_cfg() -> DaemonConfig {
        DaemonConfig {
            run_workers: 1,
            session_workers: 1,
            queue_depth: 2,
            ..DaemonConfig::default()
        }
    }

    #[test]
    fn admission_rejects_beyond_queue_depth_and_when_draining() {
        // No workers: everything submitted stays queued.
        let exec = Executive::new(test_cfg());
        let defaults = (GuardLimits::default(), 42, ModelKind::Med);
        for i in 0..2 {
            let (run, depth) = exec
                .submit(tiny_spec("q"), defaults.0, defaults.1, defaults.2)
                .expect("admitted");
            assert_eq!(run.id, i + 1);
            assert_eq!(depth, i as usize + 1);
        }
        assert_eq!(
            exec.submit(tiny_spec("q"), defaults.0, defaults.1, defaults.2)
                .err(),
            Some(AdmitError::QueueFull { depth: 2 })
        );
        exec.begin_drain();
        assert_eq!(
            exec.submit(tiny_spec("q"), defaults.0, defaults.1, defaults.2)
                .err(),
            Some(AdmitError::Draining)
        );
        let doc = exec.metrics_json();
        assert!(doc.contains("\"rejected_queue_full\": 1"));
        assert!(doc.contains("\"rejected_draining\": 1"));
        assert!(doc.contains("\"draining\": true"));
    }

    #[test]
    fn workers_execute_queued_runs_and_aggregate_metrics() {
        let exec = Executive::new(test_cfg());
        let workers = exec.spawn_workers();
        let (run_a, _) = exec
            .submit(
                tiny_spec("exec-a"),
                GuardLimits::default(),
                42,
                ModelKind::Med,
            )
            .expect("admitted");
        let (run_b, _) = exec
            .submit(
                tiny_spec("exec-a"),
                GuardLimits::default(),
                42,
                ModelKind::Med,
            )
            .expect("admitted");
        let out_a = run_a.wait_done();
        let out_b = run_b.wait_done();
        assert_eq!(out_a.name(), "ok");
        // Identical spec+seed ⇒ byte-identical reports through the
        // daemon path.
        assert_eq!(out_a.report_json(), out_b.report_json());
        // The second run's calibration must have hit the shared cache.
        assert!(exec.cache().stats().hits > 0, "no cache sharing");
        {
            let st = run_a.state();
            assert!(st.events_closed);
            assert!(
                st.events.iter().any(|l| l.contains("cell-finished")),
                "missing progress lines: {:?}",
                st.events
            );
        }
        let doc = exec.metrics_json();
        assert!(doc.contains("\"runs_ok\": 2"), "metrics: {doc}");
        assert!(doc.contains("\"metrics_schema_version\": 1"));
        exec.begin_drain();
        for w in workers {
            w.join().expect("worker joins");
        }
    }

    #[test]
    fn default_deadline_applies_only_when_request_sends_none() {
        let cfg = DaemonConfig {
            default_deadline: Some(Duration::from_secs(30)),
            ..test_cfg()
        };
        let exec = Executive::new(cfg);
        let (run, _) = exec
            .submit(tiny_spec("d"), GuardLimits::default(), 1, ModelKind::Med)
            .expect("admitted");
        assert_eq!(run.limits.deadline, Some(Duration::from_secs(30)));
        let explicit = GuardLimits {
            deadline: Some(Duration::from_millis(5)),
            ..GuardLimits::default()
        };
        let (run, _) = exec
            .submit(tiny_spec("d"), explicit, 1, ModelKind::Med)
            .expect("admitted");
        assert_eq!(run.limits.deadline, Some(Duration::from_millis(5)));
    }
}
