//! # ctnd — the simulation-serving daemon
//!
//! Serves the scenario engine over HTTP: clients `POST` scenario specs,
//! a bounded pool of session workers executes them — every worker's
//! session sharing one calibration cache — and clients poll or stream
//! until the deterministic report is ready. The substrate is the
//! library's [`Session`](contention_scenario::prelude::Session) facade;
//! the daemon adds what a long-running, multi-tenant process needs:
//!
//! * **admission control** — a bounded run queue; overflow answers
//!   `429` + `Retry-After`, draining answers `503`;
//! * **per-run supervision** — requests carry `deadline_ms` /
//!   `event_budget` ([`GuardLimits`](contention_scenario::prelude::GuardLimits)),
//!   so a hostile spec times out instead of wedging a worker;
//! * **cancellation** — `DELETE /v1/runs/{id}` fires the run's
//!   `CancelToken`; a mid-run cancel still yields a partial report whose
//!   interrupted cells carry `cancelled` status rows;
//! * **streaming progress** — `GET /v1/runs/{id}/events` follows the
//!   run's `RunEvent` log as chunked NDJSON;
//! * **aggregated metrics** — `GET /metrics` merges every session's
//!   `SessionMetrics` (via `SessionMetrics::merge`) and adds daemon
//!   counters (queue depth, rejections, cache hit rate);
//! * **TTL retention** — completed reports stay queryable for a
//!   configurable window, then evict;
//! * **graceful shutdown** — SIGTERM/ctrl-c stops admission, cancels
//!   in-flight runs, flushes their partial reports and exits 0.
//!
//! Determinism survives the trip: a report fetched from
//! `GET /v1/runs/{id}/report` is byte-identical to `ctnsim run
//! --format json` of the same spec, seed, model and limits.
//!
//! ```
//! use ctnd::{Daemon, DaemonConfig};
//!
//! let daemon = Daemon::spawn(DaemonConfig {
//!     addr: "127.0.0.1:0".to_string(), // ephemeral port
//!     ..DaemonConfig::default()
//! })
//! .expect("bind");
//! let health = ctnd::client::request(daemon.addr(), "GET", "/healthz", None, b"").unwrap();
//! assert_eq!(health.status, 200);
//! assert!(health.body.contains("\"ok\""));
//! daemon.shutdown();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod exec;
pub mod http;
pub mod json;
mod registry;
mod server;
pub mod signal;

pub use exec::{AdmitError, DaemonConfig, Executive};
pub use registry::{Run, RunOutcome, RunPhase, RunRegistry};

use server::ConnPool;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running daemon: listener + connection pool + session workers.
///
/// [`Daemon::shutdown`] performs the full graceful-drain sequence; the
/// `ctnd` binary calls it when SIGTERM/SIGINT trips the
/// [`signal`] flag. Dropping a `Daemon` without calling `shutdown`
/// leaves its threads serving (they hold their own `Arc`s) — fine for
/// a process about to exit, wrong for anything else.
#[derive(Debug)]
pub struct Daemon {
    addr: SocketAddr,
    exec: Arc<Executive>,
    pool: Arc<ConnPool>,
    accept_stop: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    run_workers: Vec<JoinHandle<()>>,
    conn_workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Binds, spawns the worker pools and starts serving.
    pub fn spawn(cfg: DaemonConfig) -> io::Result<Daemon> {
        for (name, value) in [
            ("run_workers", cfg.run_workers),
            ("session_workers", cfg.session_workers),
            ("queue_depth", cfg.queue_depth),
            ("conn_workers", cfg.conn_workers),
        ] {
            if value == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{name} must be at least 1"),
                ));
            }
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let exec = Executive::new(cfg.clone());
        let run_workers = exec.spawn_workers();
        let pool = ConnPool::new();
        let conn_workers = pool.spawn_workers(&exec, cfg.conn_workers);
        let accept_stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let pool = Arc::clone(&pool);
            let exec = Arc::clone(&exec);
            let stop = Arc::clone(&accept_stop);
            std::thread::Builder::new()
                .name("ctnd-accept".to_string())
                .spawn(move || server::accept_loop(listener, pool, exec, stop))
                .expect("spawn acceptor")
        };
        Ok(Daemon {
            addr,
            exec,
            pool,
            accept_stop,
            acceptor,
            run_workers,
            conn_workers,
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared core, for tests and benches that want to introspect
    /// counters or submit without HTTP.
    pub fn executive(&self) -> &Arc<Executive> {
        &self.exec
    }

    /// Stops admission and cancels every queued and in-flight run, but
    /// keeps serving reads — clients can still fetch the partial
    /// reports the drain flushes. [`Daemon::shutdown`] completes the
    /// sequence.
    pub fn begin_drain(&self) {
        self.exec.begin_drain();
    }

    /// Graceful shutdown: drain (stop admitting, cancel in-flight runs),
    /// wait for the workers to flush every partial report, then stop
    /// the listener and connection pool.
    pub fn shutdown(self) {
        self.exec.begin_drain();
        for w in self.run_workers {
            let _ = w.join();
        }
        self.accept_stop.store(true, Ordering::Release);
        let _ = self.acceptor.join();
        self.pool.stop();
        for w in self.conn_workers {
            let _ = w.join();
        }
    }
}
