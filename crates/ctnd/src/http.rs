//! A hand-rolled, minimal HTTP/1.1 layer on blocking streams.
//!
//! The vendored-deps constraint rules out tokio/hyper, and the daemon
//! needs very little: parse one request (request line, headers,
//! `Content-Length` body), write one response, and stream progress with
//! chunked transfer encoding. Every connection is single-shot — the
//! daemon answers with `Connection: close` and closes, which keeps the
//! connection pool's bookkeeping trivial and is plenty for a simulation
//! service whose responses take milliseconds to minutes, not
//! microseconds.
//!
//! The parser is strict where it is cheap to be (CRLF line endings, one
//! space between request-line tokens, `HTTP/1.x` versions only) and
//! bounded everywhere (header block and body size caps), so a hostile
//! peer cannot balloon memory.

use std::io::{self, Read, Write};

/// Header block beyond this size is rejected (414/431-class abuse).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parse/IO failure while reading a request, mapped to the status the
/// server answers with.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request (syntax, unsupported framing): answer 400.
    BadRequest(String),
    /// Body longer than the server's cap: answer 413.
    BodyTooLarge,
    /// The underlying stream failed (timeout, reset): no answer possible.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Percent-decoded path without the query string.
    pub path: String,
    /// Decoded `key=value` query pairs, in order.
    pub query: Vec<(String, String)>,
    /// Headers as `(lower-case name, value)` pairs, in order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads and parses one request from `stream`. The stream must be
/// readable *and* writable: when the client sent `Expect:
/// 100-continue`, the interim `100 Continue` response is written before
/// the body is read (otherwise curl stalls a second before sending it).
pub fn read_request<S: Read + Write>(
    stream: &mut S,
    max_body: usize,
) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut tmp = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("header block too large".into()));
        }
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before headers completed".into(),
            ));
        }
        buf.extend_from_slice(&tmp[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("headers are not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest(
            "chunked request bodies are not supported; send Content-Length".into(),
        ));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {v:?}")))?,
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge);
    }

    let mut body = buf[head_end + 4..].to_vec();
    if body.len() < content_length
        && headers
            .iter()
            .any(|(n, v)| n == "expect" && v.to_ascii_lowercase().contains("100-continue"))
    {
        stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        stream.flush()?;
    }
    while body.len() < content_length {
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before body completed".into(),
            ));
        }
        body.extend_from_slice(&tmp[..n]);
    }
    body.truncate(content_length);

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)
        .ok_or_else(|| HttpError::BadRequest("malformed percent-encoding in path".into()))?;
    let mut query = Vec::new();
    if let Some(raw) = raw_query {
        for pair in raw.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let (Some(k), Some(v)) = (percent_decode(k), percent_decode(v)) else {
                return Err(HttpError::BadRequest(
                    "malformed percent-encoding in query".into(),
                ));
            };
            query.push((k, v));
        }
    }

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// Index of the `\r\n\r\n` separating headers from body, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decodes `%XX` sequences and `+`-as-space; `None` on malformed or
/// non-UTF-8 results.
fn percent_decode(input: &str) -> Option<String> {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hex = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// The standard reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One non-streaming response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers beyond the always-present set.
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// Writes the response with `Content-Length` framing and
    /// `Connection: close`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Writes a `Transfer-Encoding: chunked` response incrementally — the
/// transport behind `GET /v1/runs/{id}/events`. Each [`ChunkedWriter::chunk`]
/// flushes, so the client sees progress lines as they happen.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(mut w: W, status: u16, content_type: &str) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
            content_type
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Writes one chunk (empty input is skipped — a zero-length chunk
    /// would terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Writes the terminating zero chunk.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory Read+Write stream for parser tests. Input arrives
    /// in segments: each `read` drains at most the front segment, so a
    /// two-segment stream models a client that sends its body only
    /// after the head (the `Expect: 100-continue` dance).
    struct Fake {
        segments: Vec<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Fake {
        fn new(input: &str) -> Self {
            Fake::segmented(&[input.as_bytes()])
        }

        fn segmented(parts: &[&[u8]]) -> Self {
            Fake {
                segments: parts.iter().map(|p| p.to_vec()).collect(),
                output: Vec::new(),
            }
        }
    }

    impl Read for Fake {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            while let Some(front) = self.segments.first_mut() {
                if front.is_empty() {
                    self.segments.remove(0);
                    continue;
                }
                let n = front.len().min(buf.len());
                buf[..n].copy_from_slice(&front[..n]);
                front.drain(..n);
                return Ok(n);
            }
            Ok(0)
        }
    }

    impl Write for Fake {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let mut s = Fake::new(
            "GET /v1/runs/7?deadline_ms=1500&note=a%20b+c HTTP/1.1\r\nHost: x\r\nX-Weird:  padded \r\n\r\n",
        );
        let req = read_request(&mut s, 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/runs/7");
        assert_eq!(req.query_param("deadline_ms"), Some("1500"));
        assert_eq!(req.query_param("note"), Some("a b c"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("x-weird"), Some("padded"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_and_answers_expect_continue() {
        let mut s = Fake::new(
            "POST /v1/runs HTTP/1.1\r\nContent-Length: 11\r\nExpect: 100-continue\r\n\r\nhello world",
        );
        let req = read_request(&mut s, 1024).unwrap();
        assert_eq!(req.body, b"hello world");
        // The body arrived with the head here, so no interim response
        // was needed.
        assert!(s.output.is_empty());

        // Body *not* yet sent: the parser must emit 100 Continue first.
        let head = "POST /v1/runs HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\n";
        let mut s = Fake::segmented(&[head.as_bytes(), b"ok"]);
        let req = read_request(&mut s, 1024).unwrap();
        assert_eq!(req.body, b"ok");
        assert_eq!(s.output, b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET /x HTTP/1.1\r\nNo-colon-here\r\n\r\n",
            "GET /x%GG HTTP/1.1\r\n\r\n",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let mut s = Fake::new(bad);
            assert!(
                matches!(read_request(&mut s, 1024), Err(HttpError::BadRequest(_))),
                "accepted {bad:?}"
            );
        }
        let mut s = Fake::new("POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\n");
        assert!(matches!(
            read_request(&mut s, 10),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn response_and_chunked_writer_frame_correctly() {
        let mut out = Vec::new();
        Response::json(429, "{\"error\": \"queue full\"}".to_string())
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 23\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\": \"queue full\"}"));

        let mut out = Vec::new();
        {
            let mut cw = ChunkedWriter::start(&mut out, 200, "application/x-ndjson").unwrap();
            cw.chunk(b"{\"event\":\"x\"}\n").unwrap();
            cw.chunk(b"").unwrap(); // skipped, not a terminator
            cw.finish().unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.ends_with("\r\n\r\ne\r\n{\"event\":\"x\"}\n\r\n0\r\n\r\n"));
    }
}
