//! End-to-end tests of the daemon over real sockets: concurrent
//! submissions multiplexed onto the bounded worker pool, byte-identity
//! of served reports against the `ctnsim` CLI, admission control
//! (429/503), mid-run cancellation, TTL eviction and `/metrics`.

#[path = "../../scenario/tests/common/json_lint.rs"]
mod json_lint;

use ctnd::client::{request, HttpResponse};
use ctnd::json;
use ctnd::{Daemon, DaemonConfig};
use json_lint::validate_json;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// A fast single-cell spec (4-node incast, 16 KiB) on the same fabric
/// as [`SLOW_SPEC`], so one run of either warms the calibration cache
/// for the other.
const TINY_SPEC: &str = r#"
name = "ctnd-smoke"
description = "small single-switch incast for daemon tests"

[sweep]
message_bytes = [16384]
nodes = [4]
reps = 1
warmup = 0

[topology]
hosts = 16
kind = "single-switch"

[topology.link]
bandwidth_bytes_per_sec = 125000000.0
latency_ns = 20000

[topology.switch]
per_port_cap_bytes = 65536
shared_buffer_bytes = 262144

[transport]
kind = "tcp"
window_bytes = 65536

[workload]
kind = "incast"
receivers = 1
"#;

/// A multi-cell spec slow enough (in a debug build) that a DELETE
/// lands while later cells are still pending.
const SLOW_SPEC: &str = r#"
name = "ctnd-slow"
description = "multi-cell incast used to test cancellation and 429s"

[sweep]
message_bytes = [262144, 524288]
nodes = [8, 16]
reps = 2
warmup = 0

[topology]
hosts = 16
kind = "single-switch"

[topology.link]
bandwidth_bytes_per_sec = 125000000.0
latency_ns = 20000

[topology.switch]
per_port_cap_bytes = 65536
shared_buffer_bytes = 262144

[transport]
kind = "tcp"
window_bytes = 65536

[workload]
kind = "incast"
receivers = 1
"#;

fn daemon(cfg: DaemonConfig) -> Daemon {
    Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        ..cfg
    })
    .expect("daemon binds an ephemeral port")
}

fn post_toml(addr: SocketAddr, spec: &str, query: &str) -> HttpResponse {
    let path = format!("/v1/runs{query}");
    request(
        addr,
        "POST",
        &path,
        Some("application/toml"),
        spec.as_bytes(),
    )
    .expect("POST /v1/runs")
}

/// Extracts `"run_id": "N"` from a 202 submission response.
fn run_id(resp: &HttpResponse) -> String {
    assert_eq!(resp.status, 202, "submission rejected: {}", resp.body);
    let doc = json::parse(&resp.body).expect("submission response is JSON");
    doc.get("run_id")
        .and_then(|v| v.as_str())
        .expect("run_id present")
        .to_string()
}

/// Polls `GET /v1/runs/{id}` until the outcome is non-null; returns the
/// parsed status document.
fn wait_done(addr: SocketAddr, id: &str) -> json::Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = request(addr, "GET", &format!("/v1/runs/{id}"), None, b"").expect("GET status");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = json::parse(&resp.body).expect("status response is JSON");
        if doc.get("outcome").is_some_and(|o| o.as_str().is_some()) {
            return doc;
        }
        assert!(Instant::now() < deadline, "run {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn status_field<'a>(doc: &'a json::Value, key: &str) -> &'a str {
    doc.get(key)
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("status field {key} missing"))
}

/// The `ctnsim` binary, located next to `ctnd` in the target dir (the
/// workspace build produces both; `CARGO_BIN_EXE_*` only covers this
/// package's own binaries).
fn ctnsim_path() -> std::path::PathBuf {
    let mut path = std::path::PathBuf::from(env!("CARGO_BIN_EXE_ctnd"));
    path.set_file_name(format!("ctnsim{}", std::env::consts::EXE_SUFFIX));
    assert!(
        path.exists(),
        "ctnsim not found at {} — build it first (a workspace `cargo test` does; \
         `cargo test -p ctnd` alone does not build other crates' binaries)",
        path.display()
    );
    path
}

/// The daemon's report bytes must equal `ctnsim run --format json` for
/// the same spec and seed — even when several identical submissions are
/// multiplexed concurrently onto the shared worker pool and cache.
#[test]
fn concurrent_submissions_serve_reports_byte_identical_to_the_cli() {
    let spec_path =
        std::env::temp_dir().join(format!("ctnd-determinism-{}.toml", std::process::id()));
    std::fs::write(&spec_path, TINY_SPEC).expect("write spec file");
    let cli = std::process::Command::new(ctnsim_path())
        .args([
            "run",
            spec_path.to_str().expect("utf-8 temp path"),
            "--seed",
            "42",
            "--workers",
            "2",
            "--format",
            "json",
        ])
        .output()
        .expect("ctnsim spawns");
    let _ = std::fs::remove_file(&spec_path);
    assert!(
        cli.status.success(),
        "ctnsim failed: {}",
        String::from_utf8_lossy(&cli.stderr)
    );
    let cli_report = String::from_utf8(cli.stdout).expect("ctnsim emits UTF-8");

    let d = daemon(DaemonConfig {
        run_workers: 2,
        session_workers: 2,
        ..DaemonConfig::default()
    });
    let addr = d.addr();
    let reports: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || {
                    let id = run_id(&post_toml(addr, TINY_SPEC, "?seed=42"));
                    // The events stream blocks until the run finishes —
                    // and exercises chunked streaming along the way.
                    let events = request(addr, "GET", &format!("/v1/runs/{id}/events"), None, b"")
                        .expect("GET events");
                    assert_eq!(events.status, 200);
                    assert!(
                        events.body.contains("\"event\": \"batch-started\""),
                        "{}",
                        events.body
                    );
                    assert!(
                        events.body.contains("\"event\": \"run-finished\""),
                        "{}",
                        events.body
                    );
                    let report = request(addr, "GET", &format!("/v1/runs/{id}/report"), None, b"")
                        .expect("GET report");
                    assert_eq!(report.status, 200, "{}", report.body);
                    report.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for served in &reports {
        assert_eq!(
            served, &cli_report,
            "daemon report differs from ctnsim output"
        );
    }
    d.shutdown();
}

/// With one worker and a queue of one, the third concurrent submission
/// must bounce with 429 and a `Retry-After` hint.
#[test]
fn queue_overflow_answers_429_with_retry_after() {
    let d = daemon(DaemonConfig {
        run_workers: 1,
        session_workers: 1,
        queue_depth: 1,
        ..DaemonConfig::default()
    });
    let addr = d.addr();
    let first = run_id(&post_toml(addr, SLOW_SPEC, ""));
    // Wait until the worker has popped it, so the queue is empty again.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = request(addr, "GET", &format!("/v1/runs/{first}"), None, b"").unwrap();
        let doc = json::parse(&resp.body).unwrap();
        if status_field(&doc, "status") != "queued" {
            break;
        }
        assert!(Instant::now() < deadline, "run never left the queue");
        std::thread::sleep(Duration::from_millis(10));
    }
    let second = run_id(&post_toml(addr, TINY_SPEC, ""));
    let third = post_toml(addr, TINY_SPEC, "");
    assert_eq!(third.status, 429, "{}", third.body);
    assert_eq!(third.header("retry-after"), Some("1"));
    assert!(third.body.contains("queue full"), "{}", third.body);
    for id in [first, second] {
        let del = request(addr, "DELETE", &format!("/v1/runs/{id}"), None, b"").unwrap();
        assert_eq!(del.status, 202, "{}", del.body);
    }
    d.shutdown();
}

/// DELETE mid-run cancels via the run's token; the flushed partial
/// report carries `cancelled` status rows for the interrupted cells.
#[test]
fn delete_mid_run_yields_cancelled_outcome_with_partial_report() {
    let d = daemon(DaemonConfig {
        run_workers: 1,
        session_workers: 1,
        ..DaemonConfig::default()
    });
    let addr = d.addr();
    // Warm the calibration cache on this fabric so the slow run reaches
    // its first cell quickly (a cancel during calibration is the hard
    // no-report path — legal, but not what this test is about).
    let warm = run_id(&post_toml(addr, TINY_SPEC, ""));
    wait_done(addr, &warm);

    let id = run_id(&post_toml(addr, SLOW_SPEC, ""));
    // Let it get past batch-started, then cancel.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = request(addr, "GET", &format!("/v1/runs/{id}"), None, b"").unwrap();
        let doc = json::parse(&resp.body).unwrap();
        let events = doc.get("events").and_then(|v| v.as_u64()).unwrap_or(0);
        if events >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "run never emitted an event");
        std::thread::sleep(Duration::from_millis(10));
    }
    let del = request(addr, "DELETE", &format!("/v1/runs/{id}"), None, b"").unwrap();
    assert_eq!(del.status, 202, "{}", del.body);
    assert!(del.body.contains("\"cancelling\": true"), "{}", del.body);

    let doc = wait_done(addr, &id);
    assert_eq!(status_field(&doc, "outcome"), "cancelled");
    // A post-calibration cancel flushes a partial report whose pending
    // cells were synthesized as `cancelled`.
    let report = request(addr, "GET", &format!("/v1/runs/{id}/report"), None, b"").unwrap();
    if report.status == 200 {
        assert!(
            report.body.contains("cancelled"),
            "partial report has no cancelled rows: {}",
            report.body
        );
    } else {
        assert_eq!(report.status, 409, "{}", report.body);
    }
    d.shutdown();
}

/// Draining: health flips, new submissions bounce with 503, existing
/// state stays readable.
#[test]
fn draining_rejects_submissions_but_keeps_serving_reads() {
    let d = daemon(DaemonConfig::default());
    let addr = d.addr();
    let id = run_id(&post_toml(addr, TINY_SPEC, ""));
    wait_done(addr, &id);

    d.begin_drain();
    let health = request(addr, "GET", "/healthz", None, b"").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"draining\""), "{}", health.body);
    let rejected = post_toml(addr, TINY_SPEC, "");
    assert_eq!(rejected.status, 503, "{}", rejected.body);
    // Completed runs are still readable during the drain window.
    let resp = request(addr, "GET", &format!("/v1/runs/{id}/report"), None, b"").unwrap();
    assert_eq!(resp.status, 200);
    d.shutdown();
}

/// Completed runs expire after the TTL and then 404.
#[test]
fn completed_runs_expire_after_ttl() {
    let d = daemon(DaemonConfig {
        ttl: Duration::from_millis(100),
        ..DaemonConfig::default()
    });
    let addr = d.addr();
    let id = run_id(&post_toml(addr, TINY_SPEC, ""));
    wait_done(addr, &id);
    std::thread::sleep(Duration::from_millis(350));
    let resp = request(addr, "GET", &format!("/v1/runs/{id}"), None, b"").unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);
    assert!(resp.body.contains("expire"), "{}", resp.body);
    d.shutdown();
}

/// `/metrics` is strictly valid JSON and shows both the daemon counters
/// and the shared-cache effect of multiplexing identical runs: the
/// second run's calibration hits the cache the first one filled.
#[test]
fn metrics_aggregate_sessions_and_expose_cache_hit_rate() {
    let d = daemon(DaemonConfig {
        run_workers: 2,
        ..DaemonConfig::default()
    });
    let addr = d.addr();
    for _ in 0..2 {
        let id = run_id(&post_toml(addr, TINY_SPEC, ""));
        wait_done(addr, &id);
    }
    let resp = request(addr, "GET", "/metrics", None, b"").unwrap();
    assert_eq!(resp.status, 200);
    validate_json(&resp.body).expect("/metrics emits strictly valid JSON");
    let doc = json::parse(&resp.body).expect("metrics parse");
    assert_eq!(
        doc.get("ctnd_metrics_schema_version")
            .and_then(|v| v.as_u64()),
        Some(1)
    );
    let daemon_counters = doc.get("daemon").expect("daemon section");
    assert_eq!(
        daemon_counters.get("runs_ok").and_then(|v| v.as_u64()),
        Some(2),
        "{}",
        resp.body
    );
    let hits = daemon_counters
        .get("cache_hits")
        .and_then(|v| v.as_u64())
        .expect("cache_hits counter");
    assert!(hits > 0, "second identical run should hit the shared cache");
    assert!(
        daemon_counters.get("cache_hit_rate").is_some(),
        "{}",
        resp.body
    );
    let sessions = doc.get("sessions").expect("sessions section");
    assert_eq!(
        sessions
            .get("metrics_schema_version")
            .and_then(|v| v.as_u64()),
        Some(1),
        "aggregated SessionMetrics document keeps its schema: {}",
        resp.body
    );
    d.shutdown();
}

/// Protocol edges: unknown paths, wrong methods, malformed bodies and
/// unknown envelope fields all answer with typed JSON errors.
#[test]
fn protocol_errors_answer_with_typed_json() {
    let d = daemon(DaemonConfig::default());
    let addr = d.addr();

    let resp = request(addr, "GET", "/nope", None, b"").unwrap();
    assert_eq!(resp.status, 404);
    let resp = request(addr, "PUT", "/v1/runs", None, b"{}").unwrap();
    assert_eq!(resp.status, 405);
    let resp = request(addr, "GET", "/v1/runs/999", None, b"").unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);
    let resp = request(addr, "GET", "/v1/runs/not-a-number", None, b"").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);

    let resp = request(
        addr,
        "POST",
        "/v1/runs",
        Some("application/json"),
        b"{not json",
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    let resp = request(
        addr,
        "POST",
        "/v1/runs",
        Some("application/json"),
        br#"{"scenario": "incast-burst", "frobnicate": 1}"#,
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("frobnicate"), "{}", resp.body);
    let resp = request(
        addr,
        "POST",
        "/v1/runs",
        Some("application/json"),
        br#"{"scenario": "no-such-builtin"}"#,
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);

    for (resp, what) in [
        (
            request(addr, "GET", "/v1/runs/1/report", None, b"").unwrap(),
            "report",
        ),
        (
            request(addr, "GET", "/v1/runs/1/events", None, b"").unwrap(),
            "events",
        ),
    ] {
        assert_eq!(
            resp.status, 404,
            "unsubmitted run has no {what}: {}",
            resp.body
        );
    }
    d.shutdown();
}
