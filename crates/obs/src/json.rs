//! Minimal JSON emission helpers.
//!
//! The vendored `serde` substitute has no `serde_json`, so every JSON
//! surface in the workspace is hand-rolled. These helpers centralize the
//! two places hand-rolled JSON goes wrong — string escaping and non-finite
//! floats — and are shared by the metrics document and the Chrome trace
//! writer. The output must satisfy the strict grammar checker in
//! `scenario/tests/common/json_lint.rs` (no `NaN`, no `Infinity`, no raw
//! control characters).

/// Renders `s` as a JSON string literal, including the surrounding quotes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(string(r#"a"b"#), r#""a\"b""#);
        assert_eq!(string(r"a\b"), r#""a\\b""#);
        assert_eq!(string("a\nb\tc\rd"), r#""a\nb\tc\rd""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("plain"), r#""plain""#);
        // Unicode beyond ASCII passes through unescaped (valid JSON).
        assert_eq!(string("π≈3"), "\"π≈3\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
    }
}
