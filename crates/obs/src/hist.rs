//! Log2-bucketed histogram for queue-depth distributions.

/// A 33-bucket power-of-two histogram over `u64` values: bucket 0 counts
/// zeros, bucket `k` counts values in `[2^(k-1), 2^k)`. Recording is two
/// instructions (leading-zeros + increment), cheap enough for the engine's
/// per-event pop/push hooks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; Self::BUCKETS],
    count: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Hist {
    /// Bucket 0 for zero, plus one bucket per bit of a `u64` up to 2^31 —
    /// queue depths beyond two billion events saturate the last bucket.
    const BUCKETS: usize = 33;

    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; Self::BUCKETS],
            count: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(Self::BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bucket counts trimmed of trailing zeros: index 0 counts zeros,
    /// index `k ≥ 1` counts values in `[2^(k-1), 2^k)`.
    pub fn buckets(&self) -> Vec<u64> {
        let last = self
            .buckets
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, |i| i + 1);
        self.buckets[..last].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_split_on_powers_of_two() {
        let mut h = Log2Hist::new();
        for v in [0, 0, 1, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        // zeros | [1,2) | [2,4) | [4,8) | [8,16)
        assert_eq!(h.buckets(), vec![2, 1, 2, 2, 1]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn empty_histogram_has_no_buckets() {
        assert!(Log2Hist::new().buckets().is_empty());
    }

    #[test]
    fn huge_values_saturate_the_last_bucket() {
        let mut h = Log2Hist::new();
        h.record(u64::MAX);
        let b = h.buckets();
        assert_eq!(b.len(), 33);
        assert_eq!(*b.last().unwrap(), 1);
    }
}
