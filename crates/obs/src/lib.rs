//! # contention-obs — telemetry substrate for the contention simulator
//!
//! The engine's hot loop processes roughly a million events per second, so
//! observability has to be opt-in at *compile time*: the [`Recorder`] trait
//! below is threaded through `simnet::Simulator` as a type parameter whose
//! default, [`NoopRecorder`], advertises `ENABLED = false`. Every hook call
//! site in the engine is guarded by `if R::ENABLED { … }`, which the
//! compiler folds away entirely for the no-op instantiation — the default
//! build is byte-for-byte the uninstrumented engine, and the byte-identity
//! goldens verify exactly that.
//!
//! With a recording implementation ([`EngineRecorder`]) attached, the hooks
//! capture:
//!
//! * per-link utilization and queue-depth **time series** (fixed-interval
//!   ring sampling that keeps the most recent window, see [`RingSampler`]);
//! * per-connection **event marks** — drops, fast retransmits, RTO
//!   timeouts, cwnd changes — in a bounded ring;
//! * event-loop **throughput**: pop/push counts and log2 queue-depth
//!   histograms ([`Log2Hist`]).
//!
//! The harvested [`EngineTelemetry`] is a plain-old-data snapshot the
//! scenario layer aggregates into its per-run metrics document. Export
//! helpers live in [`json`] (hand-rolled, vendored-deps-compatible JSON
//! emission) and [`trace`] (Chrome trace-event / Perfetto timelines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod engine;
pub mod hist;
pub mod json;
pub mod sample;
pub mod trace;

pub use counters::CounterSet;
pub use engine::{EngineRecorder, EngineTelemetry, LinkTelemetry, Mark, MarkKind, TelemetryConfig};
pub use hist::Log2Hist;
pub use sample::{RingSampler, Sample};
pub use trace::TraceBuilder;

/// Compile-time-gated sink for engine events.
///
/// Hook arguments are primitives (nanosecond timestamps, dense ids, byte
/// counts) so the trait has no dependency on the simulator's types and the
/// engine computes nothing it would not compute anyway. Implementations
/// must be cheap: a hook runs up to once per simulated event.
///
/// `ENABLED` gates every call site: the engine wraps each hook invocation
/// in `if R::ENABLED`, so an implementation advertising `false` (the
/// [`NoopRecorder`]) compiles to the uninstrumented engine with no branch,
/// no call, and no argument computation left behind.
pub trait Recorder {
    /// Whether the engine should invoke hooks at all. `false` removes the
    /// instrumentation at compile time.
    const ENABLED: bool = true;

    /// An event was popped from the queue at `now_ns`; `queue_len` is the
    /// number of events still pending after the pop.
    fn on_event_pop(&mut self, now_ns: u64, queue_len: usize) {
        let _ = (now_ns, queue_len);
    }

    /// An event (or run node) was pushed; `queue_len` counts pending
    /// events after the push.
    fn on_event_push(&mut self, queue_len: usize) {
        let _ = queue_len;
    }

    /// Transmitter `tx` serializes `wire_bytes` from `from_ns` until
    /// `until_ns` — the link-busy interval utilization is integrated from.
    fn on_tx_busy(&mut self, tx: u32, from_ns: u64, until_ns: u64, wire_bytes: u64) {
        let _ = (tx, from_ns, until_ns, wire_bytes);
    }

    /// `wire_bytes` were admitted to transmitter `tx`'s output queue.
    fn on_queue_enqueue(&mut self, tx: u32, wire_bytes: u64) {
        let _ = (tx, wire_bytes);
    }

    /// `wire_bytes` left transmitter `tx`'s output queue (departure).
    fn on_queue_dequeue(&mut self, tx: u32, wire_bytes: u64) {
        let _ = (tx, wire_bytes);
    }

    /// A packet was tail-dropped at transmitter `tx`.
    fn on_drop(&mut self, tx: u32, now_ns: u64) {
        let _ = (tx, now_ns);
    }

    /// Connection `conn` entered fast retransmit (triple duplicate ACK).
    fn on_fast_retransmit(&mut self, conn: u32, now_ns: u64) {
        let _ = (conn, now_ns);
    }

    /// Connection `conn` fired a retransmission timeout.
    fn on_timeout(&mut self, conn: u32, now_ns: u64) {
        let _ = (conn, now_ns);
    }

    /// Connection `conn` re-injected `count` segments after loss detection.
    fn on_retransmit(&mut self, conn: u32, now_ns: u64, count: u32) {
        let _ = (conn, now_ns, count);
    }

    /// Connection `conn`'s congestion window is `cwnd_bytes` after an ACK.
    fn on_cwnd(&mut self, conn: u32, now_ns: u64, cwnd_bytes: u64) {
        let _ = (conn, now_ns, cwnd_bytes);
    }
}

/// The default recorder: records nothing, costs nothing. `ENABLED = false`
/// lets the engine compile out every hook call site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A recorder that counts hook invocations — used here to prove the
    /// default methods are callable, and by engine tests as a minimal
    /// recording implementation.
    #[derive(Default)]
    struct Counter {
        pops: u64,
    }

    impl Recorder for Counter {
        fn on_event_pop(&mut self, _now_ns: u64, _queue_len: usize) {
            self.pops += 1;
        }
    }

    #[test]
    fn noop_recorder_is_disabled() {
        const { assert!(!NoopRecorder::ENABLED) }
    }

    #[test]
    fn custom_recorders_default_to_enabled() {
        const { assert!(Counter::ENABLED) }
        let mut c = Counter::default();
        c.on_event_pop(0, 1);
        c.on_event_push(2); // default body: ignored
        assert_eq!(c.pops, 1);
    }
}
