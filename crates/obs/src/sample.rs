//! Fixed-capacity ring sampling for time series.
//!
//! A cell can simulate seconds of virtual time at a 250 µs sampling
//! interval — tens of thousands of samples per link on a large fabric
//! would dwarf the simulation state itself. The ring keeps the most
//! recent `capacity` samples and counts what it evicted, so exports can
//! say "window covers the last N ticks, M older ticks dropped" instead of
//! silently truncating.

/// One time-series point for a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Tick timestamp (end of the sampled interval), nanoseconds.
    pub t_ns: u64,
    /// Link utilization over the interval, 0..=1000 permille.
    pub util_permille: u16,
    /// Queued bytes at the transmitter at the tick instant.
    pub queue_bytes: u64,
}

/// A bounded ring of [`Sample`]s: pushes overwrite the oldest entry once
/// the ring is full.
#[derive(Debug, Clone)]
pub struct RingSampler {
    buf: Vec<Sample>,
    capacity: usize,
    /// Index of the oldest sample once the ring has wrapped.
    start: usize,
    /// Total samples ever pushed (≥ `buf.len()`).
    pushed: u64,
}

impl RingSampler {
    /// Creates a ring holding at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: Vec::new(),
            capacity,
            start: 0,
            pushed: 0,
        }
    }

    /// Appends a sample, evicting the oldest if the ring is full.
    pub fn push(&mut self, s: Sample) {
        if self.buf.len() < self.capacity {
            self.buf.push(s);
        } else {
            self.buf[self.start] = s;
            self.start = (self.start + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples evicted to make room (total pushed minus retained).
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// The retained window in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }

    /// Consumes the ring into a chronological `Vec`.
    pub fn into_vec(self) -> Vec<Sample> {
        let mut v = self.buf;
        v.rotate_left(self.start);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: u64) -> Sample {
        Sample {
            t_ns: t,
            util_permille: (t % 1001) as u16,
            queue_bytes: t * 10,
        }
    }

    #[test]
    fn fills_without_rollover() {
        let mut r = RingSampler::new(4);
        for t in 0..3 {
            r.push(s(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let ts: Vec<u64> = r.iter().map(|x| x.t_ns).collect();
        assert_eq!(ts, vec![0, 1, 2]);
    }

    #[test]
    fn rollover_keeps_most_recent_window_in_order() {
        let mut r = RingSampler::new(4);
        for t in 0..10 {
            r.push(s(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let ts: Vec<u64> = r.iter().map(|x| x.t_ns).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "oldest evicted, order preserved");
        assert_eq!(
            r.into_vec().iter().map(|x| x.t_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn rollover_exactly_at_capacity_boundary() {
        let mut r = RingSampler::new(3);
        for t in 0..3 {
            r.push(s(t));
        }
        assert_eq!(r.dropped(), 0);
        r.push(s(3)); // first eviction
        let ts: Vec<u64> = r.iter().map(|x| x.t_ns).collect();
        assert_eq!(ts, vec![1, 2, 3]);
        assert_eq!(r.dropped(), 1);
        // Wrap all the way around a second time.
        for t in 4..=9 {
            r.push(s(t));
        }
        let ts: Vec<u64> = r.iter().map(|x| x.t_ns).collect();
        assert_eq!(ts, vec![7, 8, 9]);
        assert_eq!(r.dropped(), 7);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = RingSampler::new(0);
        r.push(s(1));
        r.push(s(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().t_ns, 2);
    }
}
