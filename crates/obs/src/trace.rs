//! Chrome trace-event (Perfetto) timeline emission.
//!
//! Emits the JSON Object Format of the Trace Event spec: a top-level
//! `{"traceEvents": [...]}` document whose events use `ph: "X"` (complete
//! spans with microsecond `ts`/`dur`) and `ph: "M"` (metadata naming
//! processes and threads). Files load directly in `chrome://tracing` and
//! <https://ui.perfetto.dev>.

use crate::json;

/// Incrementally builds a trace-event document.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<String>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names the process row `pid` in the viewer.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
            json::string(name)
        ));
    }

    /// Names the thread row `pid`/`tid` in the viewer.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            json::string(name)
        ));
    }

    /// A complete span (`ph: "X"`). Times are microseconds; `args` is a
    /// list of key/value pairs rendered into the event's `args` object
    /// (values must already be valid JSON — use [`json::string`] /
    /// [`json::number`]).
    // A trace span genuinely has this many coordinates (process, thread,
    // name, category, start, duration, args); bundling them into a struct
    // would just move the field list to every call site.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, String)],
    ) {
        let mut e = format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"cat\":{},\"ts\":{},\"dur\":{}",
            json::string(name),
            json::string(cat),
            json::number(ts_us),
            json::number(dur_us),
        );
        if !args.is_empty() {
            e.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    e.push(',');
                }
                e.push_str(&json::string(k));
                e.push(':');
                e.push_str(v);
            }
            e.push('}');
        }
        e.push('}');
        self.events.push(e);
    }

    /// An instant event (`ph: "i"`, thread scope) — a vertical tick mark.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts_us: f64) {
        self.events.push(format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"cat\":{},\"ts\":{}}}",
            json::string(name),
            json::string(cat),
            json::number(ts_us),
        ));
    }

    /// Renders the final `{"traceEvents": [...]}` document.
    pub fn finish(self) -> String {
        let mut out = String::from("{\n\"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            out.push_str(if i + 1 < self.events.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("],\n\"displayTimeUnit\": \"ms\"\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_a_valid_document() {
        let doc = TraceBuilder::new().finish();
        assert!(doc.starts_with("{\n\"traceEvents\": [\n]"));
        assert!(doc.contains("displayTimeUnit"));
    }

    #[test]
    fn span_names_are_escaped() {
        let mut t = TraceBuilder::new();
        t.span(1, 2, "cell \"a\\b\"\n", "cat", 0.5, 10.0, &[]);
        let doc = t.finish();
        assert!(
            doc.contains(r#""name":"cell \"a\\b\"\n""#),
            "quotes, backslashes and newlines must be escaped: {doc}"
        );
        assert!(!doc.contains('\u{1}'));
    }

    #[test]
    fn args_and_metadata_render_as_objects() {
        let mut t = TraceBuilder::new();
        t.process_name(1, "wall clock");
        t.thread_name(1, 3, "worker 3");
        t.span(
            1,
            3,
            "cell",
            "cell",
            1.0,
            2.0,
            &[("n", "8".to_string()), ("util", crate::json::number(0.97))],
        );
        let doc = t.finish();
        assert!(doc.contains(r#""args":{"name":"wall clock"}"#));
        assert!(doc.contains(r#""args":{"n":8,"util":0.97}"#));
        assert!(doc.contains(r#""name":"thread_name""#));
    }

    #[test]
    fn non_finite_times_degrade_to_null_not_invalid_json() {
        let mut t = TraceBuilder::new();
        t.span(1, 1, "x", "c", f64::NAN, f64::INFINITY, &[]);
        let doc = t.finish();
        assert!(doc.contains(r#""ts":null,"dur":null"#));
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
    }
}
