//! Ordered scalar counters rendered as one JSON object — the export
//! format for a service's own operational metrics (request counts, queue
//! depths, hit rates).
//!
//! The simulator's per-run telemetry has a rich schema
//! ([`EngineTelemetry`](crate::EngineTelemetry), the scenario layer's
//! metrics document); a *daemon's* counters are deliberately flat:
//! insertion-ordered `name → scalar` pairs, so the rendered document is
//! stable across runs (no hash-map ordering) and trivially diffable.
//! Emission reuses [`json`]'s escaping and number rules —
//! non-finite gauges render as `null`, never as bare `NaN`.

use crate::json;

/// One scalar a [`CounterSet`] holds.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    /// A monotonic or point-in-time integer (requests served, queue
    /// depth).
    Count(u64),
    /// A floating-point gauge (hit rate, uptime seconds).
    Gauge(f64),
    /// A boolean state flag (draining).
    Flag(bool),
    /// A short textual state (listen address, version).
    Text(String),
}

/// An insertion-ordered set of named scalars with JSON emission.
///
/// Setting a name that already exists replaces its value **in place**
/// (the original position is kept), so a set that is rebuilt every
/// scrape and one that is updated incrementally render identically.
///
/// ```
/// use contention_obs::CounterSet;
///
/// let mut c = CounterSet::new();
/// c.count("requests_total", 17);
/// c.gauge("cache_hit_rate", 0.75);
/// c.flag("draining", false);
/// assert_eq!(
///     c.render_json(),
///     "{\"requests_total\": 17, \"cache_hit_rate\": 0.75, \"draining\": false}"
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSet {
    entries: Vec<(String, Scalar)>,
}

impl CounterSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of named scalars.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no scalar has been set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn set(&mut self, name: &str, value: Scalar) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = value,
            None => self.entries.push((name.to_string(), value)),
        }
    }

    /// Sets an integer counter.
    pub fn count(&mut self, name: &str, value: u64) {
        self.set(name, Scalar::Count(value));
    }

    /// Sets a floating-point gauge (non-finite values render as `null`).
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.set(name, Scalar::Gauge(value));
    }

    /// Sets a boolean flag.
    pub fn flag(&mut self, name: &str, value: bool) {
        self.set(name, Scalar::Flag(value));
    }

    /// Sets a textual state value.
    pub fn text(&mut self, name: &str, value: &str) {
        self.set(name, Scalar::Text(value.to_string()));
    }

    /// Renders the set as a single-line JSON object in insertion order.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json::string(name));
            out.push_str(": ");
            match value {
                Scalar::Count(v) => out.push_str(&v.to_string()),
                Scalar::Gauge(v) => out.push_str(&json::number(*v)),
                Scalar::Flag(v) => out.push_str(if *v { "true" } else { "false" }),
                Scalar::Text(v) => out.push_str(&json::string(v)),
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_in_insertion_order() {
        let mut c = CounterSet::new();
        c.count("b", 2);
        c.count("a", 1);
        c.flag("draining", true);
        c.text("addr", "127.0.0.1:0");
        assert_eq!(
            c.render_json(),
            "{\"b\": 2, \"a\": 1, \"draining\": true, \"addr\": \"127.0.0.1:0\"}"
        );
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn replacement_keeps_position() {
        let mut c = CounterSet::new();
        c.count("x", 1);
        c.count("y", 2);
        c.count("x", 10);
        assert_eq!(c.render_json(), "{\"x\": 10, \"y\": 2}");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn escapes_names_and_nulls_non_finite_gauges() {
        let mut c = CounterSet::new();
        c.gauge("rate\"q", f64::NAN);
        c.gauge("inf", f64::INFINITY);
        c.gauge("ok", 0.5);
        assert_eq!(
            c.render_json(),
            "{\"rate\\\"q\": null, \"inf\": null, \"ok\": 0.5}"
        );
    }

    #[test]
    fn empty_set_is_an_empty_object() {
        assert_eq!(CounterSet::new().render_json(), "{}");
        assert!(CounterSet::new().is_empty());
    }
}
