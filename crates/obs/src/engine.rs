//! The recording [`Recorder`] implementation and its harvested snapshot.

use crate::hist::Log2Hist;
use crate::sample::{RingSampler, Sample};
use crate::Recorder;

/// Tuning knobs for [`EngineRecorder`]. The defaults keep per-cell state
/// bounded (a few hundred KiB on a large fabric) regardless of how long
/// the simulation runs.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Time-series tick length in nanoseconds (default 250 µs: fine enough
    /// to see a retransmit stall, coarse enough that a one-second cell is
    /// 4000 ticks).
    pub sample_interval_ns: u64,
    /// Samples retained per link; older ticks roll out of the ring.
    pub samples_per_link: usize,
    /// Event marks retained across all connections; older marks roll out.
    pub marks_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            sample_interval_ns: 250_000,
            samples_per_link: 256,
            marks_capacity: 4096,
        }
    }
}

/// What happened at an event mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkKind {
    /// Tail drop at a transmitter (`id` is the transmitter).
    Drop,
    /// Fast retransmit entered (`id` is the connection).
    FastRetransmit,
    /// RTO fired and retransmitted (`id` is the connection).
    Timeout,
    /// Segments re-injected after loss (`id` is the connection, `value`
    /// the segment count).
    Retransmit,
    /// Congestion window changed (`id` is the connection, `value` the new
    /// window in bytes).
    Cwnd,
}

impl MarkKind {
    /// Stable lowercase name for export.
    pub fn as_str(self) -> &'static str {
        match self {
            MarkKind::Drop => "drop",
            MarkKind::FastRetransmit => "fast_retransmit",
            MarkKind::Timeout => "timeout",
            MarkKind::Retransmit => "retransmit",
            MarkKind::Cwnd => "cwnd",
        }
    }
}

/// One point event on the simulation timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark {
    /// Simulation timestamp, nanoseconds.
    pub t_ns: u64,
    /// What happened.
    pub kind: MarkKind,
    /// Subject id (transmitter for drops, connection otherwise).
    pub id: u32,
    /// Kind-specific payload (see [`MarkKind`]).
    pub value: u64,
}

/// Per-link accumulator state.
#[derive(Debug, Clone)]
struct LinkState {
    /// Busy nanoseconds inside the current tick.
    busy_tick_ns: u64,
    /// Busy nanoseconds over the whole run.
    busy_total_ns: u64,
    queue_bytes: u64,
    max_queue_bytes: u64,
    drops: u64,
    ring: RingSampler,
}

impl LinkState {
    fn new(samples: usize) -> Self {
        Self {
            busy_tick_ns: 0,
            busy_total_ns: 0,
            queue_bytes: 0,
            max_queue_bytes: 0,
            drops: 0,
            ring: RingSampler::new(samples),
        }
    }
}

/// A recording [`Recorder`]: integrates link busy time into fixed-interval
/// utilization/queue-depth rings, collects bounded event marks, and counts
/// event-loop throughput. One instance observes one simulator.
#[derive(Debug)]
pub struct EngineRecorder {
    cfg: TelemetryConfig,
    events: u64,
    pushes: u64,
    pop_hist: Log2Hist,
    push_hist: Log2Hist,
    first_ns: Option<u64>,
    last_ns: u64,
    next_tick_ns: u64,
    links: Vec<LinkState>,
    marks: Vec<Mark>,
    marks_start: usize,
    marks_seen: u64,
    /// Last cwnd recorded per connection: cwnd marks are emitted only on
    /// change, so a steady-state ACK clock does not flood the mark ring.
    last_cwnd: Vec<u64>,
}

impl Default for EngineRecorder {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

impl EngineRecorder {
    /// A recorder with the given knobs.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Self {
            cfg,
            events: 0,
            pushes: 0,
            pop_hist: Log2Hist::new(),
            push_hist: Log2Hist::new(),
            first_ns: None,
            last_ns: 0,
            next_tick_ns: 0,
            links: Vec::new(),
            marks: Vec::new(),
            marks_start: 0,
            marks_seen: 0,
            last_cwnd: Vec::new(),
        }
    }

    #[inline]
    fn link(&mut self, tx: u32) -> &mut LinkState {
        let idx = tx as usize;
        if idx >= self.links.len() {
            let samples = self.cfg.samples_per_link;
            self.links.resize_with(idx + 1, || LinkState::new(samples));
        }
        &mut self.links[idx]
    }

    fn mark(&mut self, m: Mark) {
        if self.marks.len() < self.cfg.marks_capacity.max(1) {
            self.marks.push(m);
        } else {
            self.marks[self.marks_start] = m;
            self.marks_start = (self.marks_start + 1) % self.marks.len();
        }
        self.marks_seen += 1;
    }

    /// Closes the sampling ticks in `[next_tick, now]`.
    #[inline]
    fn advance_ticks(&mut self, now_ns: u64) {
        while self.next_tick_ns <= now_ns {
            let t = self.next_tick_ns;
            let interval = self.cfg.sample_interval_ns;
            for link in &mut self.links {
                let busy = link.busy_tick_ns.min(interval);
                link.ring.push(Sample {
                    t_ns: t,
                    util_permille: ((busy * 1000) / interval) as u16,
                    queue_bytes: link.queue_bytes,
                });
                link.busy_tick_ns = 0;
            }
            self.next_tick_ns = t + interval;
        }
    }

    /// Drains the accumulated state into a snapshot, leaving the recorder
    /// empty (reusable for another run).
    pub fn take_telemetry(&mut self) -> EngineTelemetry {
        // Close the trailing partial tick so short runs export a series
        // (its utilization is still computed against a full interval, so
        // the last point underestimates slightly).
        if self.first_ns.is_some() {
            let end = self.next_tick_ns;
            self.advance_ticks(end);
        }
        let fresh = EngineRecorder::new(self.cfg.clone());
        let done = std::mem::replace(self, fresh);
        let mut marks = done.marks;
        marks.rotate_left(done.marks_start);
        EngineTelemetry {
            sample_interval_ns: done.cfg.sample_interval_ns,
            events: done.events,
            pushes: done.pushes,
            first_event_ns: done.first_ns.unwrap_or(0),
            last_event_ns: done.last_ns,
            pop_queue_hist: done.pop_hist.buckets(),
            push_queue_hist: done.push_hist.buckets(),
            links: done
                .links
                .into_iter()
                .enumerate()
                .map(|(tx, l)| LinkTelemetry {
                    tx: tx as u32,
                    busy_ns: l.busy_total_ns,
                    max_queue_bytes: l.max_queue_bytes,
                    drops: l.drops,
                    samples_dropped: l.ring.dropped(),
                    samples: l.ring.into_vec(),
                })
                .collect(),
            marks_dropped: done.marks_seen - marks.len() as u64,
            marks,
        }
    }
}

impl Recorder for EngineRecorder {
    #[inline]
    fn on_event_pop(&mut self, now_ns: u64, queue_len: usize) {
        self.events += 1;
        self.pop_hist.record(queue_len as u64);
        if self.first_ns.is_none() {
            self.first_ns = Some(now_ns);
            self.next_tick_ns = now_ns + self.cfg.sample_interval_ns;
        }
        self.last_ns = now_ns;
        if now_ns >= self.next_tick_ns {
            self.advance_ticks(now_ns);
        }
    }

    #[inline]
    fn on_event_push(&mut self, queue_len: usize) {
        self.pushes += 1;
        self.push_hist.record(queue_len as u64);
    }

    #[inline]
    fn on_tx_busy(&mut self, tx: u32, from_ns: u64, until_ns: u64, _wire_bytes: u64) {
        let link = self.link(tx);
        let busy = until_ns - from_ns;
        link.busy_tick_ns += busy;
        link.busy_total_ns += busy;
    }

    #[inline]
    fn on_queue_enqueue(&mut self, tx: u32, wire_bytes: u64) {
        let link = self.link(tx);
        link.queue_bytes += wire_bytes;
        if link.queue_bytes > link.max_queue_bytes {
            link.max_queue_bytes = link.queue_bytes;
        }
    }

    #[inline]
    fn on_queue_dequeue(&mut self, tx: u32, wire_bytes: u64) {
        let link = self.link(tx);
        link.queue_bytes = link.queue_bytes.saturating_sub(wire_bytes);
    }

    fn on_drop(&mut self, tx: u32, now_ns: u64) {
        self.link(tx).drops += 1;
        self.mark(Mark {
            t_ns: now_ns,
            kind: MarkKind::Drop,
            id: tx,
            value: 0,
        });
    }

    fn on_fast_retransmit(&mut self, conn: u32, now_ns: u64) {
        self.mark(Mark {
            t_ns: now_ns,
            kind: MarkKind::FastRetransmit,
            id: conn,
            value: 0,
        });
    }

    fn on_timeout(&mut self, conn: u32, now_ns: u64) {
        self.mark(Mark {
            t_ns: now_ns,
            kind: MarkKind::Timeout,
            id: conn,
            value: 0,
        });
    }

    fn on_retransmit(&mut self, conn: u32, now_ns: u64, count: u32) {
        self.mark(Mark {
            t_ns: now_ns,
            kind: MarkKind::Retransmit,
            id: conn,
            value: count as u64,
        });
    }

    #[inline]
    fn on_cwnd(&mut self, conn: u32, now_ns: u64, cwnd_bytes: u64) {
        let idx = conn as usize;
        if idx >= self.last_cwnd.len() {
            self.last_cwnd.resize(idx + 1, 0);
        }
        if self.last_cwnd[idx] != cwnd_bytes {
            self.last_cwnd[idx] = cwnd_bytes;
            self.mark(Mark {
                t_ns: now_ns,
                kind: MarkKind::Cwnd,
                id: conn,
                value: cwnd_bytes,
            });
        }
    }
}

/// Snapshot harvested from an [`EngineRecorder`] after a run.
#[derive(Debug, Clone)]
pub struct EngineTelemetry {
    /// Tick length the series below were sampled at.
    pub sample_interval_ns: u64,
    /// Events popped from the queue.
    pub events: u64,
    /// Push hook invocations (run nodes count once).
    pub pushes: u64,
    /// Timestamp of the first event, nanoseconds.
    pub first_event_ns: u64,
    /// Timestamp of the last event, nanoseconds.
    pub last_event_ns: u64,
    /// Log2 histogram of queue depth at pop (see [`Log2Hist::buckets`]).
    pub pop_queue_hist: Vec<u64>,
    /// Log2 histogram of queue depth at push.
    pub push_queue_hist: Vec<u64>,
    /// Per-transmitter series and totals (indexed by dense tx id; only
    /// transmitters that saw traffic appear).
    pub links: Vec<LinkTelemetry>,
    /// Event marks in chronological order (bounded window).
    pub marks: Vec<Mark>,
    /// Marks evicted from the bounded window.
    pub marks_dropped: u64,
}

impl EngineTelemetry {
    /// Simulated span covered by this run, in seconds.
    pub fn sim_span_secs(&self) -> f64 {
        (self.last_event_ns.saturating_sub(self.first_event_ns)) as f64 * 1e-9
    }
}

/// Per-link slice of an [`EngineTelemetry`].
#[derive(Debug, Clone)]
pub struct LinkTelemetry {
    /// Dense transmitter id.
    pub tx: u32,
    /// Total busy (serializing) nanoseconds.
    pub busy_ns: u64,
    /// Peak queued bytes observed at this transmitter.
    pub max_queue_bytes: u64,
    /// Tail drops at this transmitter.
    pub drops: u64,
    /// Retained utilization/queue-depth window, chronological.
    pub samples: Vec<Sample>,
    /// Older samples evicted from the ring.
    pub samples_dropped: u64,
}

impl LinkTelemetry {
    /// Merges consecutive samples at or above `threshold_permille`
    /// utilization into `(start_ns, end_ns)` saturation intervals. Each
    /// sample covers the `interval` nanoseconds ending at its timestamp.
    pub fn saturated_intervals(
        &self,
        threshold_permille: u16,
        interval_ns: u64,
    ) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        for s in &self.samples {
            if s.util_permille < threshold_permille {
                continue;
            }
            let start = s.t_ns.saturating_sub(interval_ns);
            match out.last_mut() {
                Some((_, end)) if *end >= start => *end = s.t_ns,
                _ => out.push((start, s.t_ns)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(interval: u64, samples: usize, marks: usize) -> TelemetryConfig {
        TelemetryConfig {
            sample_interval_ns: interval,
            samples_per_link: samples,
            marks_capacity: marks,
        }
    }

    #[test]
    fn utilization_integrates_busy_time_per_tick() {
        let mut r = EngineRecorder::new(cfg(1000, 16, 16));
        r.on_event_pop(0, 1);
        // Link 0 busy 500 ns of the first 1000 ns tick.
        r.on_tx_busy(0, 100, 600, 64);
        r.on_event_pop(1000, 1); // closes tick at t=1000
        let t = r.take_telemetry();
        assert_eq!(t.links.len(), 1);
        let s = &t.links[0].samples;
        assert_eq!(s[0].t_ns, 1000);
        assert_eq!(s[0].util_permille, 500);
        assert_eq!(t.links[0].busy_ns, 500);
        assert_eq!(t.events, 2);
    }

    #[test]
    fn queue_depth_tracks_enqueue_dequeue_and_peak() {
        let mut r = EngineRecorder::new(cfg(1000, 16, 16));
        r.on_event_pop(0, 1);
        r.on_queue_enqueue(2, 1500);
        r.on_queue_enqueue(2, 1500);
        r.on_queue_dequeue(2, 1500);
        r.on_event_pop(1000, 1);
        let t = r.take_telemetry();
        let link = t.links.iter().find(|l| l.tx == 2).unwrap();
        assert_eq!(link.max_queue_bytes, 3000);
        assert_eq!(link.samples[0].queue_bytes, 1500);
    }

    #[test]
    fn mark_ring_rolls_over_keeping_newest() {
        let mut r = EngineRecorder::new(cfg(1000, 4, 3));
        for i in 0..5u64 {
            r.on_timeout(7, i * 10);
        }
        let t = r.take_telemetry();
        assert_eq!(t.marks.len(), 3);
        assert_eq!(t.marks_dropped, 2);
        let ts: Vec<u64> = t.marks.iter().map(|m| m.t_ns).collect();
        assert_eq!(ts, vec![20, 30, 40]);
    }

    #[test]
    fn cwnd_marks_dedupe_unchanged_windows() {
        let mut r = EngineRecorder::new(cfg(1000, 4, 64));
        r.on_cwnd(0, 10, 2920);
        r.on_cwnd(0, 20, 2920); // unchanged: no mark
        r.on_cwnd(0, 30, 5840);
        r.on_cwnd(1, 40, 2920);
        let t = r.take_telemetry();
        assert_eq!(t.marks.len(), 3);
        assert_eq!(t.marks[1].value, 5840);
    }

    #[test]
    fn saturated_intervals_merge_adjacent_ticks() {
        let link = LinkTelemetry {
            tx: 0,
            busy_ns: 0,
            max_queue_bytes: 0,
            drops: 0,
            samples: vec![
                Sample {
                    t_ns: 1000,
                    util_permille: 990,
                    queue_bytes: 0,
                },
                Sample {
                    t_ns: 2000,
                    util_permille: 1000,
                    queue_bytes: 0,
                },
                Sample {
                    t_ns: 3000,
                    util_permille: 100,
                    queue_bytes: 0,
                },
                Sample {
                    t_ns: 4000,
                    util_permille: 960,
                    queue_bytes: 0,
                },
            ],
            samples_dropped: 0,
        };
        assert_eq!(
            link.saturated_intervals(950, 1000),
            vec![(0, 2000), (3000, 4000)]
        );
    }

    #[test]
    fn recorder_is_reusable_after_take() {
        let mut r = EngineRecorder::new(cfg(1000, 4, 4));
        r.on_event_pop(0, 1);
        let first = r.take_telemetry();
        assert_eq!(first.events, 1);
        r.on_event_pop(5, 2);
        r.on_event_pop(6, 2);
        let second = r.take_telemetry();
        assert_eq!(second.events, 2);
    }
}
