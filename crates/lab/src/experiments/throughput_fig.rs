//! Figure 4: the §6 throughput-under-contention approach — predicting the
//! 40-process All-to-All on Gigabit Ethernet with the synthetic
//! `β = (1−ρ)·βF + ρ·βC` from stress-test extremes, against the measured
//! Direct Exchange and the contention-free lower bound.
//!
//! The figure's point is a *partial* success: good at large messages,
//! wrong below ~64 KiB, motivating the §7 signature model.

use super::{ExperimentOutput, Profile, Scale};
use crate::presets::ClusterPreset;
use crate::report::{ascii_chart, Series, Table};
use crate::runner::{fit_cfg_for, measure_alltoall_curve, measure_hockney};
use contention_model::models::CompletionModel;
use contention_model::throughput::ThroughputModel;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use simmpi::harness::stress_run;

/// Message sizes, deliberately including the small range where the
/// synthetic-β model misses.
fn sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![
            4 * 1024,
            16 * 1024,
            64 * 1024,
            256 * 1024,
            512 * 1024,
            1024 * 1024,
        ],
        Scale::Full => vec![
            2 * 1024,
            4 * 1024,
            8 * 1024,
            16 * 1024,
            32 * 1024,
            64 * 1024,
            128 * 1024,
            256 * 1024,
            512 * 1024,
            768 * 1024,
            1024 * 1024,
            1200 * 1024,
        ],
    }
}

/// Runs figure 4.
pub fn run(profile: &Profile) -> ExperimentOutput {
    let preset = ClusterPreset::gigabit_ethernet();
    let n = 40;
    let hockney = match measure_hockney(&preset, profile.seed) {
        Ok(h) => h,
        Err(e) => {
            let mut out = ExperimentOutput::default();
            out.notes.push(format!("hockney fit failed: {e}"));
            return out;
        }
    };

    // βF / βC from a saturating stress run (the paper reads them off
    // fig. 3's fastest and slowest connections).
    let stress_k = 40;
    let bytes = super::stress::transfer_bytes(profile.scale);
    let mut world = preset.build_world(2 * stress_k, profile.seed ^ 0xBEEF);
    let mut ranks: Vec<usize> = (0..2 * stress_k).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(profile.seed ^ 0xBEEF);
    ranks.shuffle(&mut rng);
    let pairs: Vec<(usize, usize)> = ranks.chunks(2).map(|c| (c[0], c[1])).collect();
    let stress = stress_run(&mut world, &pairs, bytes);
    let model = match ThroughputModel::from_stress_times(
        hockney.alpha_secs,
        bytes,
        &stress.times_secs,
        0.5,
    ) {
        Ok(m) => m,
        Err(e) => {
            let mut out = ExperimentOutput::default();
            out.notes.push(format!("stress estimation failed: {e}"));
            return out;
        }
    };

    let curve = measure_alltoall_curve(
        &preset,
        n,
        &sizes(profile.scale),
        &fit_cfg_for(profile.seed),
    );
    let mut table = Table::new(
        "fig4: throughput-under-contention prediction at 40 processes (GbE)",
        &[
            "message_bytes",
            "measured_s",
            "synthetic_beta_pred_s",
            "lower_bound_s",
        ],
    );
    let (mut meas, mut pred, mut bound) = (Vec::new(), Vec::new(), Vec::new());
    for (m, t) in curve {
        let p = model.predict(n, m);
        let b = hockney.alltoall_lower_bound(n, m);
        table.push_row(vec![
            m.to_string(),
            format!("{t:.6}"),
            format!("{p:.6}"),
            format!("{b:.6}"),
        ]);
        meas.push((m as f64, t));
        pred.push((m as f64, p));
        bound.push((m as f64, b));
    }
    let chart = ascii_chart(
        &[
            Series {
                label: "m measured".into(),
                points: meas,
            },
            Series {
                label: "s synthetic-beta".into(),
                points: pred,
            },
            Series {
                label: "b lower-bound".into(),
                points: bound,
            },
        ],
        64,
        16,
    );
    ExperimentOutput {
        tables: vec![table],
        charts: vec![chart],
        notes: vec![
            format!(
                "betaF={:.3e} s/B, betaC={:.3e} s/B, rho=0.5 → synthetic beta={:.3e} s/B \
                 (paper §6: 8.502e-9, 8.498e-8 → 4.674e-8)",
                model.beta_free,
                model.beta_contended,
                model.synthetic_beta()
            ),
            "paper fig4: the synthetic-beta curve tracks large messages but misses below ~64 KiB"
                .into(),
        ],
    }
}
