//! Figures 8, 11 and 14: estimation error `(measured/estimated − 1)·100 %`
//! vs process count, one curve per message size — the paper's accuracy
//! claim ("usually smaller than 10 % when there are enough processes to
//! saturate the network").

use super::{surface, ExperimentOutput, Profile};
use crate::presets::ClusterPreset;
use crate::report::{ascii_chart, Series, Table};

fn run_generic(preset: &ClusterPreset, sample_n: usize, profile: &Profile) -> ExperimentOutput {
    let (points, cal) = match surface::measure_surface(preset, sample_n, profile) {
        Ok(x) => x,
        Err(e) => {
            let mut out = ExperimentOutput::default();
            out.notes.push(e);
            return out;
        }
    };
    let mut table = Table::new(
        format!("{} estimation error vs process count", preset.name),
        &["nodes", "message_bytes", "error_pct"],
    );
    let mut sizes: Vec<u64> = points.iter().map(|p| p.message_bytes).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut series = Vec::new();
    for (i, &m) in sizes.iter().enumerate() {
        let glyph = char::from(b'a' + (i % 26) as u8);
        let pts: Vec<(f64, f64)> = points
            .iter()
            .filter(|p| p.message_bytes == m)
            .map(|p| (p.n as f64, p.error_percent()))
            .collect();
        series.push(Series {
            label: format!("{glyph} {} KiB", m / 1024),
            points: pts,
        });
    }
    for p in &points {
        table.push_row(vec![
            p.n.to_string(),
            p.message_bytes.to_string(),
            format!("{:+.2}", p.error_percent()),
        ]);
    }
    let saturated: Vec<&contention_model::metrics::AccuracyPoint> = points
        .iter()
        .filter(|p| p.n >= sample_n.saturating_sub(8))
        .collect();
    let within = saturated.iter().filter(|p| p.within(12.0)).count();
    let notes = vec![
        format!(
            "signature from n'={sample_n}: gamma={:.4} delta={:.3}ms",
            cal.signature.gamma,
            cal.signature.delta_secs * 1e3
        ),
        format!(
            "near/above the sample count, {within}/{} points within 12% \
             (paper: errors shrink once the network saturates)",
            saturated.len()
        ),
    ];
    ExperimentOutput {
        tables: vec![table],
        charts: vec![ascii_chart(&series, 64, 16)],
        notes,
    }
}

/// Figure 8: Fast Ethernet error grid.
pub fn run_fast_ethernet(profile: &Profile) -> ExperimentOutput {
    run_generic(&ClusterPreset::fast_ethernet(), 24, profile)
}

/// Figure 11: Gigabit Ethernet error grid.
pub fn run_gigabit_ethernet(profile: &Profile) -> ExperimentOutput {
    run_generic(&ClusterPreset::gigabit_ethernet(), 40, profile)
}

/// Figure 14: Myrinet error grid.
pub fn run_myrinet(profile: &Profile) -> ExperimentOutput {
    run_generic(&ClusterPreset::myrinet(), 24, profile)
}
