//! Figure 5: the small-message non-linearity map on Gigabit Ethernet —
//! completion time over (nodes × message size) at fine message-size steps,
//! showing the regime where the linear model breaks (eager/rendezvous
//! switching, per-message overheads, ACK dynamics).

use super::{ExperimentOutput, Profile, Scale};
use crate::presets::ClusterPreset;
use crate::report::{ascii_chart, Series, Table};
use crate::runner::{fit_cfg_for, measure_alltoall_curve, parallel_map, SweepConfig};

/// Node counts (the paper's fig. 5 spans 4–16).
fn nodes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![4, 8, 12, 16],
        Scale::Full => (4..=16).step_by(2).collect(),
    }
}

/// Message sizes: the paper samples every 256 B up to ~16 KiB.
fn sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => (1..=16).map(|i| i * 1024).collect(),
        Scale::Full => (1..=64).map(|i| i * 256).collect(),
    }
}

/// Runs figure 5.
pub fn run(profile: &Profile) -> ExperimentOutput {
    let preset = ClusterPreset::gigabit_ethernet();
    let ns = nodes(profile.scale);
    let ms = sizes(profile.scale);
    let seed = profile.seed;
    let ms_worker = ms.clone();
    let curves: Vec<Vec<(u64, f64)>> = parallel_map(ns.clone(), profile.workers, move |n| {
        let cfg = SweepConfig {
            reps: 2,
            ..fit_cfg_for(seed ^ (n as u64) << 16)
        };
        measure_alltoall_curve(&preset, n, &ms_worker, &cfg)
    });

    let mut table = Table::new(
        "fig5: small-message completion map (GbE)",
        &["nodes", "message_bytes", "time_s"],
    );
    for (n, curve) in ns.iter().zip(&curves) {
        for &(m, t) in curve {
            table.push_row(vec![n.to_string(), m.to_string(), format!("{t:.6}")]);
        }
    }

    // Chart the largest node count, where non-linearity is most visible,
    // against a linear reference anchored at the largest sampled size.
    let last = curves.last().expect("at least one node count");
    let pts: Vec<(f64, f64)> = last.iter().map(|&(m, t)| (m as f64, t)).collect();
    let (m_ref, t_ref) = *last.last().expect("non-empty curve");
    let linear: Vec<(f64, f64)> = last
        .iter()
        .map(|&(m, _)| (m as f64, t_ref * m as f64 / m_ref as f64))
        .collect();
    let chart = ascii_chart(
        &[
            Series {
                label: "m measured".into(),
                points: pts,
            },
            Series {
                label: "l linear-ref".into(),
                points: linear,
            },
        ],
        64,
        14,
    );

    // Quantify non-linearity: max deviation of measured from the
    // through-origin linear reference.
    let max_dev = last
        .iter()
        .map(|&(m, t)| {
            let lin = t_ref * m as f64 / m_ref as f64;
            ((t - lin) / lin).abs()
        })
        .fold(0.0, f64::max);
    ExperimentOutput {
        tables: vec![table],
        charts: vec![chart],
        notes: vec![format!(
            "max deviation from proportional scaling at n={}: {:.0}% \
             (paper fig5: strongly non-linear below ~16 KiB)",
            ns.last().unwrap(),
            max_dev * 100.0
        )],
    }
}
