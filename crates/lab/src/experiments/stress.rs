//! Figures 2 and 3: the §3 network stress test on Gigabit Ethernet —
//! simultaneous point-to-point connections flooding the fabric.
//!
//! Fig. 2 plots the *average* per-connection bandwidth against the number
//! of connections; Fig. 3 plots the individual transmission times, whose
//! long tail (stragglers ≈ 6× the fastest) is the TCP-retransmission
//! fingerprint the whole paper builds on.

use super::{ExperimentOutput, Profile, Scale};
use crate::presets::ClusterPreset;
use crate::report::{ascii_chart, Series, Table};
use contention_stats::descriptive::Summary;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use simmpi::harness::{stress_run, StressResult};

/// Connection counts swept (the paper samples 1..60).
pub fn connection_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 4, 8, 16, 24, 32, 48, 60],
        Scale::Full => vec![
            1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60,
        ],
    }
}

/// Transfer size per connection.
pub fn transfer_bytes(scale: Scale) -> u64 {
    match scale {
        // The paper uses 32 MB; a quarter of that keeps the quick profile
        // fast while staying far above every window/buffer scale.
        Scale::Quick => 8 * 1024 * 1024,
        Scale::Full => 32 * 1024 * 1024,
    }
}

/// Runs the stress sweep: for each connection count `k`, `2k` hosts are
/// paired off randomly (seeded), all transfers start simultaneously.
pub fn stress_sweep(profile: &Profile) -> Vec<(usize, StressResult)> {
    let preset = ClusterPreset::gigabit_ethernet();
    let bytes = transfer_bytes(profile.scale);
    connection_counts(profile.scale)
        .into_iter()
        .map(|k| {
            let mut world = preset.build_world(2 * k, profile.seed ^ (k as u64) << 8);
            // Random pairing over scattered hosts: like grabbing 2k nodes
            // from the batch scheduler, most pairs cross switches.
            let mut ranks: Vec<usize> = (0..2 * k).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(profile.seed ^ 0xF00D ^ k as u64);
            ranks.shuffle(&mut rng);
            let pairs: Vec<(usize, usize)> = ranks.chunks(2).map(|c| (c[0], c[1])).collect();
            (k, stress_run(&mut world, &pairs, bytes))
        })
        .collect()
}

/// Figure 2: average per-connection bandwidth vs connection count.
pub fn run_fig2(profile: &Profile) -> ExperimentOutput {
    let sweep = stress_sweep(profile);
    let mut table = Table::new(
        "fig2: average bandwidth vs simultaneous connections (GbE)",
        &["connections", "mean_MBps", "min_MBps", "max_MBps"],
    );
    let mut pts = Vec::new();
    for (k, result) in &sweep {
        let bws: Vec<f64> = result
            .times_secs
            .iter()
            .map(|&t| result.bytes as f64 / t / 1e6)
            .collect();
        let s = Summary::of(&bws).expect("non-empty");
        table.push_row(vec![
            k.to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.min),
            format!("{:.2}", s.max),
        ]);
        pts.push((*k as f64, s.mean));
    }
    let chart = ascii_chart(
        &[Series {
            label: "B avg MB/s".into(),
            points: pts,
        }],
        64,
        14,
    );
    ExperimentOutput {
        tables: vec![table],
        charts: vec![chart],
        notes: vec![
            "paper fig2: single connection ≈ 112 MB/s, degrading steadily with more connections"
                .into(),
        ],
    }
}

/// Figure 3: individual transmission times vs connection count.
pub fn run_fig3(profile: &Profile) -> ExperimentOutput {
    let sweep = stress_sweep(profile);
    let mut table = Table::new(
        "fig3: individual transmission times (GbE stress)",
        &["connections", "connection_idx", "time_s"],
    );
    let mut individual = Vec::new();
    let mut average = Vec::new();
    let mut max_straggler: f64 = 1.0;
    for (k, result) in &sweep {
        let s = Summary::of(&result.times_secs).expect("non-empty");
        average.push((*k as f64, s.mean));
        max_straggler = max_straggler.max(result.straggler_factor());
        for (i, &t) in result.times_secs.iter().enumerate() {
            table.push_row(vec![k.to_string(), i.to_string(), format!("{t:.4}")]);
            individual.push((*k as f64, t));
        }
    }
    let chart = ascii_chart(
        &[
            Series {
                label: ". individual".into(),
                points: individual,
            },
            Series {
                label: "A average".into(),
                points: average,
            },
        ],
        64,
        16,
    );
    ExperimentOutput {
        tables: vec![table],
        charts: vec![chart],
        notes: vec![format!(
            "worst straggler factor (slowest/fastest within a run): {max_straggler:.1}x \
             (paper: some connections take almost six times longer)"
        )],
    }
}
