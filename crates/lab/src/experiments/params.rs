//! The "T1" parameter table: every fitted constant the paper quotes in its
//! text, side by side with our measured equivalents — §6's βF/βC/β and
//! §8's per-network (γ, δ, M).

use super::{fit, ExperimentOutput, Profile};
use crate::presets::ClusterPreset;
use crate::report::Table;
use crate::runner::{calibrate_report, default_sample_sizes};
use contention_model::throughput::ThroughputModel;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use simmpi::harness::stress_run;

/// Runs the parameter reproduction table.
pub fn run(profile: &Profile) -> ExperimentOutput {
    let mut table = Table::new(
        "params: fitted constants vs the paper",
        &["network", "parameter", "ours", "paper"],
    );
    let mut notes = Vec::new();

    for preset in ClusterPreset::all() {
        let sample_n = match preset.name {
            "gigabit-ethernet" => 40,
            _ => 24,
        };
        match calibrate_report(&preset, sample_n, &default_sample_sizes(), profile.seed) {
            Ok(report) => {
                let cal = report.calibration;
                let paper = fit::paper_signature(&preset);
                table.push_row(vec![
                    preset.name.into(),
                    "alpha_us".into(),
                    format!("{:.1}", cal.hockney.alpha_secs * 1e6),
                    "-".into(),
                ]);
                table.push_row(vec![
                    preset.name.into(),
                    "beta_ns_per_B".into(),
                    format!("{:.3}", cal.hockney.beta_secs_per_byte * 1e9),
                    "-".into(),
                ]);
                table.push_row(vec![
                    preset.name.into(),
                    "gamma".into(),
                    format!("{:.4}", cal.signature.gamma),
                    format!("{:.4}", paper.gamma),
                ]);
                table.push_row(vec![
                    preset.name.into(),
                    "delta_ms".into(),
                    format!("{:.3}", cal.signature.delta_secs * 1e3),
                    format!("{:.3}", paper.delta_secs * 1e3),
                ]);
                table.push_row(vec![
                    preset.name.into(),
                    "M_bytes".into(),
                    format!("{:?}", cal.signature.cutoff_bytes),
                    format!("{:?}", paper.cutoff),
                ]);
            }
            Err(e) => notes.push(format!("{}: calibration failed: {e}", preset.name)),
        }
    }

    // §6's βF/βC from the Gigabit Ethernet stress test.
    let preset = ClusterPreset::gigabit_ethernet();
    let bytes = super::stress::transfer_bytes(profile.scale);
    let k = 40;
    let mut world = preset.build_world(2 * k, profile.seed ^ 0xBEEF);
    let mut ranks: Vec<usize> = (0..2 * k).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(profile.seed ^ 0xBEEF);
    ranks.shuffle(&mut rng);
    let pairs: Vec<(usize, usize)> = ranks.chunks(2).map(|c| (c[0], c[1])).collect();
    let stress = stress_run(&mut world, &pairs, bytes);
    if let Ok(model) = ThroughputModel::from_stress_times(0.0, bytes, &stress.times_secs, 0.5) {
        table.push_row(vec![
            "gigabit-ethernet".into(),
            "betaF_s_per_B".into(),
            format!("{:.3e}", model.beta_free),
            "8.502e-9".into(),
        ]);
        table.push_row(vec![
            "gigabit-ethernet".into(),
            "betaC_s_per_B".into(),
            format!("{:.3e}", model.beta_contended),
            "8.498e-8".into(),
        ]);
        table.push_row(vec![
            "gigabit-ethernet".into(),
            "synthetic_beta".into(),
            format!("{:.3e}", model.synthetic_beta()),
            "4.674e-8".into(),
        ]);
    }

    notes.push(
        "shape targets: gamma(FE) ≈ 1 < gamma(Myrinet) < gamma(GbE); \
         delta(FE) > delta(GbE) >> delta(Myrinet) ≈ 0"
            .into(),
    );
    ExperimentOutput {
        tables: vec![table],
        charts: vec![],
        notes,
    }
}
