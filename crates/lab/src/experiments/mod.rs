//! One module per paper figure, all registered in [`registry`].
//!
//! Figures 6/9/12 (fit), 7/10/13 (prediction surface) and 8/11/14
//! (estimation error) have identical structure across the three networks,
//! so they share generic implementations parameterized by preset and
//! sample node count.

pub mod error_grid;
pub mod fit;
pub mod params;
pub mod smallmsg;
pub mod stress;
pub mod surface;
pub mod throughput_fig;

use crate::report::Table;
use std::path::PathBuf;

/// How large a grid an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced grids sized for a small machine (minutes, not hours).
    Quick,
    /// The paper's grids.
    Full,
}

/// Execution profile shared by all experiments.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Grid size.
    pub scale: Scale,
    /// Base seed; every experiment derives its own streams from it.
    pub seed: u64,
    /// Directory CSV outputs are written to.
    pub out_dir: PathBuf,
    /// Worker threads for parallel sweeps.
    pub workers: usize,
}

impl Default for Profile {
    fn default() -> Self {
        Self {
            scale: Scale::Quick,
            seed: 42,
            out_dir: PathBuf::from("results"),
            workers: crate::runner::default_workers(),
        }
    }
}

/// What an experiment produces: tables (also written as CSV) and optional
/// pre-rendered charts/notes for the terminal.
#[derive(Debug, Default)]
pub struct ExperimentOutput {
    /// Result tables, one CSV file each.
    pub tables: Vec<Table>,
    /// ASCII charts to print.
    pub charts: Vec<String>,
    /// Free-form notes (fitted parameters, paper comparison).
    pub notes: Vec<String>,
}

/// A registered, reproducible experiment.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Stable identifier (`fig2` … `fig14`, `params`).
    pub id: &'static str,
    /// Human-readable description.
    pub title: &'static str,
    /// What the paper shows in this figure.
    pub paper_claim: &'static str,
    /// Runner.
    pub run: fn(&Profile) -> ExperimentOutput,
}

/// Every reproducible experiment, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig2",
            title: "Average per-connection bandwidth vs simultaneous connections (GbE)",
            paper_claim: "average throughput drops drastically as connections increase",
            run: stress::run_fig2,
        },
        Experiment {
            id: "fig3",
            title: "Individual 32 MB transmission times vs connections (GbE)",
            paper_claim: "most connections finish near the mean; stragglers take ~6x longer",
            run: stress::run_fig3,
        },
        Experiment {
            id: "fig4",
            title: "Throughput-under-contention prediction, 40 processes (GbE)",
            paper_claim: "synthetic beta from rho=0.5 tracks large messages, misses small ones",
            run: throughput_fig::run,
        },
        Experiment {
            id: "fig5",
            title: "Small-message non-linearity map (GbE, 256 B steps)",
            paper_claim: "completion time is non-linear below ~16 KiB",
            run: smallmsg::run,
        },
        Experiment {
            id: "fig6",
            title: "Fitting MPI_Alltoall on Fast Ethernet (24 machines)",
            paper_claim: "gamma=1.0195, delta=8.23 ms for m >= 2 KiB: affine, near the bound",
            run: fit::run_fast_ethernet,
        },
        Experiment {
            id: "fig7",
            title: "Prediction surface on Fast Ethernet",
            paper_claim: "signature fitted at n'=24 predicts other node counts",
            run: surface::run_fast_ethernet,
        },
        Experiment {
            id: "fig8",
            title: "Estimation error vs process count on Fast Ethernet",
            paper_claim: "error < ~10% once the network is saturated",
            run: error_grid::run_fast_ethernet,
        },
        Experiment {
            id: "fig9",
            title: "Fitting MPI_Alltoall on Gigabit Ethernet (40 machines)",
            paper_claim: "gamma=4.3628, delta=4.93 ms for m >= 8 KiB: far above the bound",
            run: fit::run_gigabit_ethernet,
        },
        Experiment {
            id: "fig10",
            title: "Prediction surface on Gigabit Ethernet",
            paper_claim: "signature fitted at n'=40 predicts other node counts",
            run: surface::run_gigabit_ethernet,
        },
        Experiment {
            id: "fig11",
            title: "Estimation error vs process count on Gigabit Ethernet",
            paper_claim: "large negative error below saturation, < ~10% above",
            run: error_grid::run_gigabit_ethernet,
        },
        Experiment {
            id: "fig12",
            title: "Fitting MPI_Alltoall on Myrinet (24 processes)",
            paper_claim: "gamma=2.49754, delta below 1 us: pure ratio, no affine term",
            run: fit::run_myrinet,
        },
        Experiment {
            id: "fig13",
            title: "Prediction surface on Myrinet",
            paper_claim: "signature fitted at n'=24 predicts other node counts",
            run: surface::run_myrinet,
        },
        Experiment {
            id: "fig14",
            title: "Estimation error vs process count on Myrinet",
            paper_claim: "saturation only beyond ~40 processes; error shrinks there",
            run: error_grid::run_myrinet,
        },
        Experiment {
            id: "params",
            title: "Fitted parameter table (alpha, beta, betaF, betaC, gamma, delta, M)",
            paper_claim: "the quoted parameter values of sections 6 and 8",
            run: params::run,
        },
    ]
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_figure_and_params() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        for fig in 2..=14 {
            assert!(
                ids.contains(&format!("fig{fig}").as_str()),
                "fig{fig} missing"
            );
        }
        assert!(ids.contains(&"params"));
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(by_id("fig9").unwrap().id, "fig9");
        assert!(by_id("fig99").is_none());
    }
}
