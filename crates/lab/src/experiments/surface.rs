//! Figures 7, 10 and 13: prediction surfaces — measured vs predicted
//! completion over a (node count × message size) grid, with the signature
//! fitted once at the paper's sample node count.

use super::{ExperimentOutput, Profile, Scale};
use crate::presets::ClusterPreset;
use crate::report::Table;
use crate::runner::{calibrate_report, fit_cfg_for, measure_alltoall_curve, parallel_map};
use contention_model::metrics::AccuracyPoint;

/// Node-count grids per figure.
pub fn surface_nodes(preset: &ClusterPreset, scale: Scale) -> Vec<usize> {
    let max = match preset.name {
        "fast-ethernet" => 40,
        "gigabit-ethernet" => 48,
        _ => 48,
    };
    match scale {
        Scale::Quick => vec![8, 16, 24, 36, 48]
            .into_iter()
            .filter(|&n| n <= max)
            .collect(),
        Scale::Full => (4..=max).step_by(4).collect(),
    }
}

/// Message-size grid for the surfaces.
pub fn surface_sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![128 * 1024, 512 * 1024, 1024 * 1024],
        Scale::Full => vec![
            64 * 1024,
            128 * 1024,
            256 * 1024,
            384 * 1024,
            512 * 1024,
            768 * 1024,
            1024 * 1024,
            1200 * 1024,
        ],
    }
}

/// Measures the full `(n, m)` grid in parallel (one world per node count)
/// and returns accuracy points against the fitted signature.
pub fn measure_surface(
    preset: &ClusterPreset,
    sample_n: usize,
    profile: &Profile,
) -> Result<
    (
        Vec<AccuracyPoint>,
        contention_model::calibration::Calibration,
    ),
    String,
> {
    let report = calibrate_report(
        preset,
        sample_n,
        &crate::experiments::fit::fit_sizes(profile.scale),
        profile.seed,
    )
    .map_err(|e| format!("calibration failed on {}: {e}", preset.name))?;
    let cal = report.calibration;
    let ns = surface_nodes(preset, profile.scale);
    let ms = surface_sizes(profile.scale);
    let seed = profile.seed;
    let preset = *preset;
    let ms_for_worker = ms.clone();
    let per_n: Vec<Vec<(u64, f64)>> = parallel_map(ns.clone(), profile.workers, move |n| {
        let cfg = fit_cfg_for(seed ^ (n as u64).wrapping_mul(0x9E37_79B9));
        measure_alltoall_curve(&preset, n, &ms_for_worker, &cfg)
    });
    let mut points = Vec::with_capacity(ns.len() * ms.len());
    for (n, curve) in ns.iter().zip(per_n) {
        for (m, t) in curve {
            points.push(AccuracyPoint {
                n: *n,
                message_bytes: m,
                measured_secs: t,
                predicted_secs: cal.signature.predict(*n, m),
            });
        }
    }
    Ok((points, cal))
}

fn run_generic(preset: &ClusterPreset, sample_n: usize, profile: &Profile) -> ExperimentOutput {
    let (points, cal) = match measure_surface(preset, sample_n, profile) {
        Ok(x) => x,
        Err(e) => {
            let mut out = ExperimentOutput::default();
            out.notes.push(e);
            return out;
        }
    };
    let mut table = Table::new(
        format!(
            "{} prediction surface (signature from n'={sample_n})",
            preset.name
        ),
        &[
            "nodes",
            "message_bytes",
            "measured_s",
            "predicted_s",
            "error_pct",
        ],
    );
    for p in &points {
        table.push_row(vec![
            p.n.to_string(),
            p.message_bytes.to_string(),
            format!("{:.6}", p.measured_secs),
            format!("{:.6}", p.predicted_secs),
            format!("{:+.2}", p.error_percent()),
        ]);
    }
    let within = points.iter().filter(|p| p.within(10.0)).count();
    let notes = vec![
        format!(
            "signature: gamma={:.4} delta={:.3}ms M={:?}",
            cal.signature.gamma,
            cal.signature.delta_secs * 1e3,
            cal.signature.cutoff_bytes
        ),
        format!(
            "{within}/{} grid points within 10% (paper: <10% error once saturated)",
            points.len()
        ),
    ];
    ExperimentOutput {
        tables: vec![table],
        charts: vec![],
        notes,
    }
}

/// Figure 7: Fast Ethernet surface.
pub fn run_fast_ethernet(profile: &Profile) -> ExperimentOutput {
    run_generic(&ClusterPreset::fast_ethernet(), 24, profile)
}

/// Figure 10: Gigabit Ethernet surface.
pub fn run_gigabit_ethernet(profile: &Profile) -> ExperimentOutput {
    run_generic(&ClusterPreset::gigabit_ethernet(), 40, profile)
}

/// Figure 13: Myrinet surface.
pub fn run_myrinet(profile: &Profile) -> ExperimentOutput {
    run_generic(&ClusterPreset::myrinet(), 24, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_respect_cluster_capacity() {
        for preset in ClusterPreset::all() {
            for n in surface_nodes(&preset, Scale::Quick) {
                assert!(n <= preset.max_hosts());
            }
        }
    }

    #[test]
    fn full_grid_is_denser() {
        let p = ClusterPreset::gigabit_ethernet();
        assert!(surface_nodes(&p, Scale::Full).len() > surface_nodes(&p, Scale::Quick).len());
    }
}
