//! Figures 6, 9 and 12: fitting the contention signature on one network —
//! measured Direct Exchange vs lower bound vs fitted prediction, at the
//! paper's sample node count.

use super::{ExperimentOutput, Profile, Scale};
use crate::presets::ClusterPreset;
use crate::report::{ascii_chart, Series, Table};
use crate::runner::{calibrate_report, default_sample_sizes};

/// Paper-reported signature values for the comparison notes.
pub struct PaperSignature {
    /// Paper's fitted γ.
    pub gamma: f64,
    /// Paper's fitted δ in seconds.
    pub delta_secs: f64,
    /// Paper's cutoff `M` in bytes (`None` for "no affine term").
    pub cutoff: Option<u64>,
}

/// The paper's quoted values per network (§8).
pub fn paper_signature(preset: &ClusterPreset) -> PaperSignature {
    match preset.name {
        "fast-ethernet" => PaperSignature {
            gamma: 1.0195,
            delta_secs: 8.23e-3,
            cutoff: Some(2 * 1024),
        },
        "gigabit-ethernet" => PaperSignature {
            gamma: 4.3628,
            delta_secs: 4.93e-3,
            cutoff: Some(8 * 1024),
        },
        _ => PaperSignature {
            gamma: 2.49754,
            delta_secs: 1e-6,
            cutoff: None,
        },
    }
}

/// Message-size grid for the fit figures.
pub fn fit_sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => default_sample_sizes(),
        Scale::Full => vec![
            16 * 1024,
            32 * 1024,
            64 * 1024,
            128 * 1024,
            256 * 1024,
            384 * 1024,
            512 * 1024,
            640 * 1024,
            768 * 1024,
            896 * 1024,
            1024 * 1024,
            1200 * 1024,
        ],
    }
}

/// Generic fit figure: calibrate on `preset` at `sample_n` and tabulate
/// measured / bound / prediction across message sizes.
pub fn run_generic(preset: &ClusterPreset, sample_n: usize, profile: &Profile) -> ExperimentOutput {
    let sizes = fit_sizes(profile.scale);
    let report = match calibrate_report(preset, sample_n, &sizes, profile.seed) {
        Ok(r) => r,
        Err(e) => {
            let mut out = ExperimentOutput::default();
            out.notes
                .push(format!("calibration failed on {}: {e}", preset.name));
            return out;
        }
    };
    let cal = report.calibration;
    let sig = cal.signature;

    let mut table = Table::new(
        format!(
            "{} fit at n'={sample_n} (measured vs bound vs prediction)",
            preset.name
        ),
        &[
            "message_bytes",
            "measured_s",
            "lower_bound_s",
            "prediction_s",
            "measured_over_bound",
        ],
    );
    let mut meas_series = Vec::new();
    let mut bound_series = Vec::new();
    let mut pred_series = Vec::new();
    for &(m, t) in &report.input.alltoall {
        let bound = cal.hockney.alltoall_lower_bound(sample_n, m);
        let pred = sig.predict(sample_n, m);
        table.push_row(vec![
            m.to_string(),
            format!("{t:.6}"),
            format!("{bound:.6}"),
            format!("{pred:.6}"),
            format!("{:.4}", t / bound),
        ]);
        let x = m as f64;
        meas_series.push((x, t));
        bound_series.push((x, bound));
        pred_series.push((x, pred));
    }
    let chart = ascii_chart(
        &[
            Series {
                label: "m measured".into(),
                points: meas_series,
            },
            Series {
                label: "b lower-bound".into(),
                points: bound_series,
            },
            Series {
                label: "p prediction".into(),
                points: pred_series,
            },
        ],
        64,
        16,
    );

    let paper = paper_signature(preset);
    let notes = vec![
        format!(
            "fitted: gamma={:.4} delta={:.3}ms M={:?} (R2={:.4}); hockney alpha={:.1}us beta={:.3}ns/B",
            sig.gamma,
            sig.delta_secs * 1e3,
            sig.cutoff_bytes,
            sig.fit_r_squared,
            cal.hockney.alpha_secs * 1e6,
            cal.hockney.beta_secs_per_byte * 1e9,
        ),
        format!(
            "paper:  gamma={:.4} delta={:.3}ms M={:?}",
            paper.gamma,
            paper.delta_secs * 1e3,
            paper.cutoff,
        ),
    ];

    ExperimentOutput {
        tables: vec![table],
        charts: vec![chart],
        notes,
    }
}

/// Figure 6: Fast Ethernet at 24 machines.
pub fn run_fast_ethernet(profile: &Profile) -> ExperimentOutput {
    run_generic(&ClusterPreset::fast_ethernet(), 24, profile)
}

/// Figure 9: Gigabit Ethernet at 40 machines.
pub fn run_gigabit_ethernet(profile: &Profile) -> ExperimentOutput {
    run_generic(&ClusterPreset::gigabit_ethernet(), 40, profile)
}

/// Figure 12: Myrinet at 24 processes.
pub fn run_myrinet(profile: &Profile) -> ExperimentOutput {
    run_generic(&ClusterPreset::myrinet(), 24, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_the_text() {
        let fe = paper_signature(&ClusterPreset::fast_ethernet());
        assert_eq!(fe.gamma, 1.0195);
        let ge = paper_signature(&ClusterPreset::gigabit_ethernet());
        assert_eq!(ge.cutoff, Some(8192));
        let my = paper_signature(&ClusterPreset::myrinet());
        assert!(my.cutoff.is_none());
    }

    #[test]
    fn full_scale_uses_finer_grid() {
        assert!(fit_sizes(Scale::Full).len() > fit_sizes(Scale::Quick).len());
    }
}
