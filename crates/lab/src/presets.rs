//! The three cluster presets standing in for the paper's testbeds.
//!
//! | preset | stands in for | key contention mechanism |
//! |---|---|---|
//! | [`ClusterPreset::fast_ethernet`] | icluster2's Fast Ethernet: 5 edge switches × 20 ports behind a GbE core | slow edge links never saturate the uplinks at ≤40 nodes → γ ≈ 1; per-round rendezvous sync + kernel scheduling hiccups → a large affine δ |
//! | [`ClusterPreset::gigabit_ethernet`] | GdX's Broadcom GbE with an oversubscribed core | All-to-All bursts exhaust shared switch buffers and saturate uplinks; TCP RTO stalls inflate completion → γ ≈ 4 |
//! | [`ClusterPreset::myrinet`] | icluster2's Myrinet 2000 (one M3-E128 switch, `gm`) | lossless fabric, but the host DMA bus cannot overlap send+receive at full rate → γ ≈ 2, δ ≈ 0 (no kernel in the path) |
//!
//! Each preset fixes the *cluster*, not the experiment: [`ClusterPreset::build_world`]
//! instantiates any number of nodes up to the cluster size, assigning hosts
//! round-robin across edge switches the way a batch scheduler scatters a
//! job.

use serde::{Deserialize, Serialize};
use simmpi::prelude::*;
use simnet::prelude::*;

/// Which physical network a preset models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// 100 Mb/s switched Ethernet, TCP.
    FastEthernet,
    /// 1 Gb/s switched Ethernet, TCP.
    GigabitEthernet,
    /// Myrinet 2000, `gm` (lossless, OS-bypass).
    Myrinet,
}

/// A reproducible cluster description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterPreset {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Network family.
    pub network: NetworkKind,
    /// Ports per edge switch.
    pub hosts_per_switch: usize,
    /// Number of edge switches (cluster capacity = switches × ports).
    pub edge_switches: usize,
    /// Host ↔ edge-switch link.
    pub edge_link: LinkConfig,
    /// Edge ↔ core link parameters.
    pub uplink: LinkConfig,
    /// Parallel uplinks per edge switch (ECMP-spread).
    pub uplinks_per_switch: usize,
    /// Edge switch buffering.
    pub edge_switch: SwitchConfig,
    /// Core switch buffering.
    pub core_switch: SwitchConfig,
    /// Optional host I/O bus `(bytes/sec, latency_ns)`: a shared-serializer
    /// DMA stage (Myrinet hosts).
    pub host_bus: Option<(f64, u64)>,
    /// Transport every connection uses.
    pub transport: TransportKind,
    /// MPI protocol parameters.
    pub mpi: MpiConfig,
}

impl ClusterPreset {
    /// icluster2's Fast Ethernet network: 5 edge switches of 20 ports each,
    /// interconnected by one Gigabit Ethernet core switch. Dual-Itanium2
    /// nodes on Linux 2.4 (HZ=100): heavy per-message overheads and
    /// occasional ~8 ms scheduling hiccups in the TCP path.
    pub fn fast_ethernet() -> Self {
        Self {
            name: "fast-ethernet",
            network: NetworkKind::FastEthernet,
            hosts_per_switch: 20,
            edge_switches: 5,
            edge_link: LinkConfig {
                bandwidth_bytes_per_sec: 12.5e6,
                latency_ns: 25_000,
            },
            uplink: LinkConfig {
                bandwidth_bytes_per_sec: 125e6,
                latency_ns: 10_000,
            },
            uplinks_per_switch: 1,
            edge_switch: SwitchConfig {
                shared_buffer_bytes: 8 * 1024 * 1024,
                per_port_cap_bytes: 2 * 1024 * 1024,
            },
            core_switch: SwitchConfig {
                shared_buffer_bytes: 16 * 1024 * 1024,
                per_port_cap_bytes: 4 * 1024 * 1024,
            },
            host_bus: None,
            transport: TransportKind::Tcp(TcpConfig {
                mss: 1460,
                window_bytes: 32 * 1024,
                ..TcpConfig::default()
            }),
            mpi: MpiConfig {
                eager_threshold: 2 * 1024,
                envelope_bytes: 64,
                cts_bytes: 32,
                send_overhead_ns: 25_000,
                recv_overhead_ns: 25_000,
                overhead_jitter_ns: 10_000,
                hiccup_probability: 0.10,
                hiccup_mean_ns: 8_000_000,
                ..MpiConfig::default()
            },
        }
    }

    /// GdX's Gigabit Ethernet: 24-port edge switches with a 2×1 GbE
    /// oversubscribed trunk to the core — All-to-All traffic saturates the
    /// trunks and the shared switch buffers, and TCP's 200 ms RTO floor
    /// turns every loss burst into a stall. Opterons on Linux 2.6
    /// (HZ=1000): smaller overheads, ~2 ms hiccups.
    pub fn gigabit_ethernet() -> Self {
        Self {
            name: "gigabit-ethernet",
            network: NetworkKind::GigabitEthernet,
            hosts_per_switch: 24,
            edge_switches: 9,
            edge_link: LinkConfig {
                bandwidth_bytes_per_sec: 125e6,
                latency_ns: 20_000,
            },
            uplink: LinkConfig {
                bandwidth_bytes_per_sec: 125e6,
                latency_ns: 10_000,
            },
            uplinks_per_switch: 4,
            edge_switch: SwitchConfig {
                shared_buffer_bytes: 256 * 1024,
                per_port_cap_bytes: 64 * 1024,
            },
            core_switch: SwitchConfig {
                shared_buffer_bytes: 1024 * 1024,
                per_port_cap_bytes: 128 * 1024,
            },
            host_bus: None,
            transport: TransportKind::Tcp(TcpConfig {
                mss: 1460,
                window_bytes: 64 * 1024,
                ..TcpConfig::default()
            }),
            mpi: MpiConfig {
                eager_threshold: 8 * 1024,
                envelope_bytes: 64,
                cts_bytes: 32,
                send_overhead_ns: 6_000,
                recv_overhead_ns: 6_000,
                overhead_jitter_ns: 2_500,
                hiccup_probability: 0.010,
                hiccup_mean_ns: 2_000_000,
                ..MpiConfig::default()
            },
        }
    }

    /// icluster2's Myrinet 2000: one 128-port M3-E128 crossbar, lossless
    /// link-level flow control, `gm` user-level transport (no kernel, no
    /// hiccups, microsecond overheads). The host DMA bus is the shared
    /// resource: it cannot stream send and receive at full rate
    /// simultaneously, which is what an All-to-All demands of every host.
    pub fn myrinet() -> Self {
        Self {
            name: "myrinet",
            network: NetworkKind::Myrinet,
            hosts_per_switch: 128,
            edge_switches: 1,
            edge_link: LinkConfig {
                bandwidth_bytes_per_sec: 250e6,
                latency_ns: 4_000,
            },
            uplink: LinkConfig {
                bandwidth_bytes_per_sec: 250e6,
                latency_ns: 2_000,
            },
            uplinks_per_switch: 1,
            edge_switch: SwitchConfig::lossless_fabric(),
            core_switch: SwitchConfig::lossless_fabric(),
            host_bus: Some((265e6, 500)),
            transport: TransportKind::Gm(GmConfig {
                mtu: 4096,
                window_bytes: 1024 * 1024,
            }),
            mpi: MpiConfig {
                eager_threshold: 4 * 1024,
                envelope_bytes: 32,
                cts_bytes: 16,
                send_overhead_ns: 1_500,
                recv_overhead_ns: 1_500,
                overhead_jitter_ns: 400,
                hiccup_probability: 0.0,
                hiccup_mean_ns: 0,
                ..MpiConfig::default()
            },
        }
    }

    /// All three presets, in the paper's order.
    pub fn all() -> [ClusterPreset; 3] {
        [
            Self::fast_ethernet(),
            Self::gigabit_ethernet(),
            Self::myrinet(),
        ]
    }

    /// Maximum node count this cluster supports.
    pub fn max_hosts(&self) -> usize {
        self.hosts_per_switch * self.edge_switches
    }

    /// Instantiates a world of `n` ranks on this cluster, hosts assigned
    /// round-robin across edge switches. `seed` drives every stochastic
    /// element (packet jitter, overhead jitter, hiccups), so equal seeds
    /// reproduce bit-identical experiments.
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds [`ClusterPreset::max_hosts`].
    pub fn build_world(&self, n: usize, seed: u64) -> World {
        self.build_world_with(n, seed, simnet::obs::NoopRecorder)
    }

    /// [`ClusterPreset::build_world`] with a telemetry recorder attached
    /// to the underlying simulator (see `simnet::obs`).
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds [`ClusterPreset::max_hosts`].
    pub fn build_world_with<R: simnet::obs::Recorder>(
        &self,
        n: usize,
        seed: u64,
        recorder: R,
    ) -> World<R> {
        let (topo, hosts) = self.build_fabric(n, seed);
        let sim_config = SimConfig {
            seed,
            ..SimConfig::default()
        };
        let sim = Simulator::with_recorder(topo, sim_config, recorder);
        let mpi = MpiConfig {
            seed: seed ^ 0x5A5A_5A5A,
            ..self.mpi
        };
        World::new(sim, hosts, mpi, self.transport)
    }

    /// Builds just the cluster's wiring for `n` ranks — the [`Topology`]
    /// plus the round-robin host assignment — without instantiating a
    /// packet simulator. The fluid (flow-level) backend runs directly over
    /// this fabric.
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds [`ClusterPreset::max_hosts`].
    pub fn build_fabric(&self, n: usize, seed: u64) -> (Topology, Vec<HostId>) {
        assert!(n > 0, "need at least one node");
        assert!(
            n <= self.max_hosts(),
            "{n} nodes exceed the {} cluster's {} ports",
            self.name,
            self.max_hosts()
        );
        let mut b = TopologyBuilder::new();
        let hosts = b.add_hosts(n);
        // Only as many edge switches as the job footprint needs.
        let switches_used = self.edge_switches.min(n);
        let edges: Vec<_> = (0..switches_used)
            .map(|_| b.add_switch(self.edge_switch))
            .collect();
        for (i, &h) in hosts.iter().enumerate() {
            b.link_host(h, edges[i % switches_used], self.edge_link);
        }
        if switches_used > 1 {
            let core = b.add_switch(self.core_switch);
            for &e in &edges {
                for _ in 0..self.uplinks_per_switch {
                    b.link_switches(e, core, self.uplink);
                }
            }
        }
        if let Some((bus_bw, bus_latency)) = self.host_bus {
            b.host_io_bus(bus_bw, bus_latency);
        }
        let sim_config = SimConfig {
            seed,
            ..SimConfig::default()
        };
        let topo = b.build(&sim_config).expect("preset topologies are valid");
        (topo, hosts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::harness::alltoall_times;

    #[test]
    fn presets_have_expected_capacities() {
        assert_eq!(ClusterPreset::fast_ethernet().max_hosts(), 100);
        assert_eq!(ClusterPreset::gigabit_ethernet().max_hosts(), 216);
        assert_eq!(ClusterPreset::myrinet().max_hosts(), 128);
    }

    #[test]
    fn every_preset_builds_and_runs_a_small_alltoall() {
        for preset in ClusterPreset::all() {
            let mut w = preset.build_world(6, 1);
            let times = alltoall_times(&mut w, AllToAllAlgorithm::DirectExchange, 16 * 1024, 0, 1);
            assert!(times[0] > 0.0, "{}", preset.name);
        }
    }

    #[test]
    fn round_robin_spreads_hosts_across_switches() {
        let preset = ClusterPreset::fast_ethernet();
        let w = preset.build_world(24, 7);
        // 24 nodes over 5 switches: spread means short same-switch routes
        // (2 hops) and longer cross-switch routes (4 hops) both exist.
        let topo = w.sim().topology();
        let h0 = simnet::ids::HostId::new(0);
        let h5 = simnet::ids::HostId::new(5);
        let h1 = simnet::ids::HostId::new(1);
        assert_eq!(topo.hop_count(h0, h5), 2, "same switch (0 and 5 ≡ 0 mod 5)");
        assert_eq!(topo.hop_count(h0, h1), 4, "cross switch via core");
    }

    #[test]
    fn single_switch_job_has_no_core() {
        // 4 nodes on the Myrinet preset: one switch, two hops (plus bus).
        let preset = ClusterPreset::myrinet();
        let w = preset.build_world(4, 3);
        let topo = w.sim().topology();
        let h0 = simnet::ids::HostId::new(0);
        let h1 = simnet::ids::HostId::new(1);
        // host → bus → switch → bus → host = 4 transmitters.
        assert_eq!(topo.hop_count(h0, h1), 4);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_job_rejected() {
        let _ = ClusterPreset::myrinet().build_world(129, 0);
    }

    #[test]
    fn same_seed_same_world_behavior() {
        let preset = ClusterPreset::gigabit_ethernet();
        let run = |seed| {
            let mut w = preset.build_world(8, seed);
            alltoall_times(&mut w, AllToAllAlgorithm::DirectExchange, 64 * 1024, 0, 1)[0]
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
