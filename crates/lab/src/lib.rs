//! # contention-lab — presets, measurement drivers and paper experiments
//!
//! Binds the simulator stack to the paper's experimental procedure:
//!
//! * [`presets`] — the three clusters (Fast Ethernet, Gigabit Ethernet,
//!   Myrinet) as reproducible topology + protocol descriptions;
//! * [`runner`] — ping-pong/Hockney measurement, All-to-All sweeps, the
//!   full §8 calibration pipeline, and a parallel sweep helper;
//! * [`experiments`] — one module per paper figure (2–14) plus the fitted
//!   parameter table, all registered for the `repro` binary;
//! * [`report`] — CSV/markdown tables and ASCII charts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod presets;
pub mod report;
pub mod runner;
