//! Measurement drivers: the paper's §8 procedure executed against the
//! simulator, plus a small parallel sweep helper.

use crate::presets::ClusterPreset;
use contention_model::calibration::{Calibration, CalibrationInput};
use contention_model::error::ModelError;
use contention_model::hockney::HockneyParams;
use contention_stats::descriptive::median;
use simmpi::prelude::*;

/// Repetition and seeding policy for a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Discarded warm-up repetitions per point.
    pub warmup: usize,
    /// Measured repetitions per point (averaged).
    pub reps: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// The `MPI_Alltoall` implementation under test. Defaults to the
    /// post-everything nonblocking Direct Exchange, which is what LAM-MPI
    /// and MPICH1 actually execute (the paper: "all communications are
    /// started simultaneously"); Algorithm 1's rounds give the rotated
    /// *posting order*.
    pub algorithm: AllToAllAlgorithm,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            warmup: 1,
            reps: 3,
            seed: 42,
            algorithm: AllToAllAlgorithm::DirectExchangeNonblocking,
        }
    }
}

/// Message sizes used to fit signatures: 64 KiB – 1 MiB, the linear regime
/// of the paper's Figs. 6/9/12 (six points, comfortably above the "at least
/// four" the fit requires).
pub fn default_sample_sizes() -> Vec<u64> {
    vec![
        64 * 1024,
        128 * 1024,
        256 * 1024,
        512 * 1024,
        768 * 1024,
        1024 * 1024,
    ]
}

/// Ping-pong sizes for the Hockney α/β fit.
pub fn default_pingpong_sizes() -> Vec<u64> {
    vec![1024, 16 * 1024, 131_072, 524_288, 1_048_576]
}

/// Measures one-way point-to-point times on the cluster: for each size,
/// several single-round-trip runs, keeping the **median** (robust against
/// scheduling hiccups, like taking the typical of 100 runs).
pub fn measure_pingpong_points(preset: &ClusterPreset, seed: u64) -> Vec<(u64, f64)> {
    let sizes = default_pingpong_sizes();
    let runs_per_size = 5;
    sizes
        .iter()
        .map(|&size| {
            let samples: Vec<f64> = (0..runs_per_size)
                .map(|r| {
                    let mut w = preset.build_world(2, seed.wrapping_add(r as u64 * 7919));
                    ping_pong(&mut w, 0, 1, &[size], 1)[0].half_rtt_secs
                })
                .collect();
            (size, median(&samples).expect("non-empty samples"))
        })
        .collect()
}

/// Fits Hockney parameters from a cluster's ping-pong measurements.
pub fn measure_hockney(preset: &ClusterPreset, seed: u64) -> Result<HockneyParams, ModelError> {
    HockneyParams::fit(&measure_pingpong_points(preset, seed))
}

/// Mean Direct Exchange All-to-All completion time at each message size,
/// on one warm world of `n` ranks.
pub fn measure_alltoall_curve(
    preset: &ClusterPreset,
    n: usize,
    sizes: &[u64],
    cfg: &SweepConfig,
) -> Vec<(u64, f64)> {
    let mut world = preset.build_world(n, cfg.seed);
    sizes
        .iter()
        .map(|&m| {
            let times = alltoall_times(&mut world, cfg.algorithm, m, cfg.warmup, cfg.reps);
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            (m, mean)
        })
        .collect()
}

/// Mean Direct Exchange completion at a single `(n, m)` point.
pub fn measure_alltoall_point(preset: &ClusterPreset, n: usize, m: u64, cfg: &SweepConfig) -> f64 {
    let mut world = preset.build_world(n, cfg.seed);
    let times = alltoall_times(&mut world, cfg.algorithm, m, cfg.warmup, cfg.reps);
    times.iter().sum::<f64>() / times.len() as f64
}

/// A calibration together with the raw measurements that produced it.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Fitted Hockney parameters and contention signature.
    pub calibration: Calibration,
    /// The measurements behind the fit.
    pub input: CalibrationInput,
}

/// The paper's full calibration: ping-pong → Hockney fit → sample
/// All-to-All sweep at `sample_n` → signature regression. Returns the raw
/// measurements too, so figures can plot measured vs fitted.
pub fn calibrate_report(
    preset: &ClusterPreset,
    sample_n: usize,
    sizes: &[u64],
    seed: u64,
) -> Result<CalibrationReport, ModelError> {
    let pingpong = measure_pingpong_points(preset, seed);
    // The sample curve anchors every later prediction, so average more
    // repetitions here than in ordinary sweeps (the paper averages 100
    // measures per point; RTO-stall quantization makes single runs lumpy).
    let cfg = SweepConfig {
        seed,
        reps: 6,
        ..SweepConfig::default()
    };
    let alltoall = measure_alltoall_curve(preset, sample_n, sizes, &cfg);
    let input = CalibrationInput {
        pingpong,
        sample_n,
        alltoall,
    };
    let calibration = Calibration::from_measurements(&input)?;
    Ok(CalibrationReport { calibration, input })
}

/// [`calibrate_report`] without the raw measurements.
pub fn calibrate_signature(
    preset: &ClusterPreset,
    sample_n: usize,
    sizes: &[u64],
    seed: u64,
) -> Result<Calibration, ModelError> {
    calibrate_report(preset, sample_n, sizes, seed).map(|r| r.calibration)
}

/// Mean completion time of an arbitrary collective at each block size
/// (the future-work extension: signatures beyond the All-to-All).
pub fn measure_collective_curve(
    preset: &ClusterPreset,
    collective: simmpi::collectives::Collective,
    n: usize,
    sizes: &[u64],
    cfg: &SweepConfig,
) -> Vec<(u64, f64)> {
    let mut world = preset.build_world(n, cfg.seed);
    sizes
        .iter()
        .map(|&m| {
            let programs = collective.programs(n, m);
            for _ in 0..cfg.warmup {
                let _ = world.run(programs.clone());
            }
            let mean = (0..cfg.reps.max(1))
                .map(|_| world.run(programs.clone()).duration_secs())
                .sum::<f64>()
                / cfg.reps.max(1) as f64;
            (m, mean)
        })
        .collect()
}

/// A default [`SweepConfig`] with the given seed.
pub fn fit_cfg_for(seed: u64) -> SweepConfig {
    SweepConfig {
        seed,
        ..SweepConfig::default()
    }
}

/// Maps `f` over `items` on up to `workers` threads, preserving order.
/// Sweeps are embarrassingly parallel (one simulator per point).
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(workers > 0);
    if items.len() <= 1 || workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    // LIFO work queue + per-slot results: order is restored by index, so
    // the output never depends on worker scheduling.
    let queue: std::sync::Mutex<Vec<(usize, T)>> =
        std::sync::Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let item = queue.lock().expect("queue lock").pop();
                let Some((idx, item)) = item else { break };
                let r = f(item);
                *slots[idx].lock().expect("slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every slot filled")
        })
        .collect()
}

/// Number of sweep workers to use on this machine.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..32).collect(), 4, |x: i32| x * x);
        let expected: Vec<i32> = (0..32).map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_map_single_worker_degenerates() {
        let out = parallel_map(vec![1, 2, 3], 1, |x: i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn pingpong_measurement_is_affine_ish() {
        let preset = ClusterPreset::myrinet();
        let points = measure_pingpong_points(&preset, 5);
        // Times strictly increase with size.
        for w in points.windows(2) {
            assert!(w[1].1 > w[0].1, "{points:?}");
        }
        let h = HockneyParams::fit(&points).unwrap();
        // Myrinet: 250 MB/s wire → β ≈ 4 ns/B within 50 %.
        assert!(
            (h.beta_secs_per_byte - 4e-9).abs() < 2e-9,
            "beta = {}",
            h.beta_secs_per_byte
        );
    }

    #[test]
    fn alltoall_curve_is_increasing() {
        let preset = ClusterPreset::myrinet();
        let cfg = SweepConfig {
            warmup: 0,
            reps: 1,
            seed: 9,
            ..SweepConfig::default()
        };
        let curve = measure_alltoall_curve(&preset, 6, &[16 * 1024, 256 * 1024], &cfg);
        assert!(curve[1].1 > curve[0].1);
    }
}
