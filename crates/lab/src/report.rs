//! Experiment output: tables (CSV / markdown / aligned text) and a small
//! ASCII chart for terminal inspection of the figure shapes.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rectangular result table with named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (used as a header comment in CSV output).
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows of cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Appends a row of floats, formatted with 6 significant digits.
    pub fn push_floats(&mut self, cells: &[f64]) {
        self.push_row(cells.iter().map(|v| format!("{v:.6}")).collect());
    }

    /// Renders as CSV (title as a `#` comment line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as an aligned, human-readable text table.
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

/// One named series of `(x, y)` points for [`ascii_chart`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label; the first character is the plot glyph.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// Renders series on a `width × height` ASCII grid with the y-axis scaled
/// to the data. Later series overwrite earlier ones where they collide.
pub fn ascii_chart(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small to read");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![b' '; width]; height];
    for s in series {
        let glyph = s.label.bytes().next().unwrap_or(b'*');
        for &(x, y) in &s.points {
            let col = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let row = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            grid[height - 1 - row][col] = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{y_max:>12.4} +{}", "-".repeat(width));
    for line in &grid {
        let _ = writeln!(out, "{:>12} |{}", "", String::from_utf8_lossy(line));
    }
    let _ = writeln!(out, "{y_min:>12.4} +{}", "-".repeat(width));
    let _ = writeln!(out, "{:>14}{:<.4} .. {:.4}", "x: ", x_min, x_max);
    for s in series {
        let _ = writeln!(out, "{:>14}{} = {}", "", &s.label[..1], s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["n", "time"]);
        t.push_row(vec!["4".into(), "0.10".into()]);
        t.push_row(vec!["8".into(), "0.25".into()]);
        t
    }

    #[test]
    fn csv_has_comment_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# demo");
        assert_eq!(lines[1], "n,time");
        assert_eq!(lines[2], "4,0.10");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn markdown_is_pipe_formatted() {
        let md = sample().to_markdown();
        assert!(md.contains("| n | time |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn aligned_output_pads_columns() {
        let text = sample().to_aligned();
        assert!(text.contains("== demo =="));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn chart_renders_extremes() {
        let s = Series {
            label: "*series".into(),
            points: vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)],
        };
        let chart = ascii_chart(&[s], 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains("4.0000"));
        assert!(chart.contains("0.0000"));
    }

    #[test]
    fn chart_handles_empty() {
        assert_eq!(ascii_chart(&[], 40, 10), "(no data)\n");
    }

    #[test]
    fn floats_row_formatting() {
        let mut t = Table::new("f", &["a"]);
        t.push_floats(&[1.5]);
        assert_eq!(t.rows[0][0], "1.500000");
    }
}
