//! Diagnostic: print the fitted Hockney parameters and contention
//! signature of each preset at a sample node count. Used to calibrate the
//! presets against the paper's reported values (γ, δ, M).

use contention_lab::presets::ClusterPreset;
use contention_lab::runner::{
    calibrate_signature, default_sample_sizes, measure_alltoall_curve, measure_hockney, SweepConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("curve") {
        let name = args
            .get(2)
            .map(String::as_str)
            .unwrap_or("gigabit-ethernet");
        let n: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(40);
        let preset = ClusterPreset::all()
            .into_iter()
            .find(|p| p.name == name)
            .expect("unknown preset");
        let h = measure_hockney(&preset, 42).expect("hockney fit");
        println!(
            "{name}: alpha={:.2}us beta={:.3}ns/B",
            h.alpha_secs * 1e6,
            h.beta_secs_per_byte * 1e9
        );
        let cfg = SweepConfig::default();
        for (m, t) in measure_alltoall_curve(&preset, n, &default_sample_sizes(), &cfg) {
            let bound = h.alltoall_lower_bound(n, m);
            println!(
                "  m={:>8} measured={:>9.4}s bound={:>8.4}s ratio={:>6.2}",
                m,
                t,
                bound,
                t / bound
            );
        }
        return;
    }
    if args.get(1).map(String::as_str) == Some("diag") {
        let name = args.get(2).map(String::as_str).unwrap_or("fast-ethernet");
        let n: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(24);
        let m: u64 = args
            .get(4)
            .and_then(|s| s.parse().ok())
            .unwrap_or(1_048_576);
        let preset = ClusterPreset::all()
            .into_iter()
            .find(|p| p.name == name)
            .expect("unknown preset");
        let mut world = preset.build_world(n, 42);
        use simmpi::prelude::*;
        let algo = AllToAllAlgorithm::DirectExchangeNonblocking;
        let t = alltoall_times(&mut world, algo, m, 1, 1)[0];
        let s = world.sim().stats();
        let h = measure_hockney(&preset, 42).unwrap();
        let bound = h.alltoall_lower_bound(n, m);
        println!(
            "{name} n={n} m={m}: t={t:.4}s bound={bound:.4}s ratio={:.3}",
            t / bound
        );
        println!(
            "  data_pkts={} retx={} ({:.2}%) timeouts={} fast_rtx={} drops={} events={}M",
            s.data_packets_sent,
            s.retransmissions,
            100.0 * s.retransmissions as f64 / s.data_packets_sent.max(1) as f64,
            s.timeouts,
            s.fast_retransmits,
            s.packets_dropped,
            s.events_processed / 1_000_000,
        );
        // Ideal wire time for the aggregate volume at the edge link:
        let per_host_bytes = (n - 1) as u64 * m;
        let wire = preset.edge_link.bandwidth_bytes_per_sec;
        println!(
            "  per-host bytes={} edge-rate time={:.4}s",
            per_host_bytes,
            per_host_bytes as f64 / wire
        );
        return;
    }
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let sample_n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    for preset in ClusterPreset::all() {
        if which != "all" && which != preset.name {
            continue;
        }
        let n = if sample_n > 0 {
            sample_n
        } else {
            match preset.name {
                "fast-ethernet" => 24,
                "gigabit-ethernet" => 40,
                _ => 24,
            }
        };
        let t0 = std::time::Instant::now();
        match calibrate_signature(&preset, n, &default_sample_sizes(), 42) {
            Ok(cal) => {
                println!(
                    "{:<17} n'={:<3} alpha={:>9.2}us beta={:>7.3}ns/B ({:>6.1} MB/s) | gamma={:<8.4} delta={:>8.3}ms M={:?} R2={:.4} [{:.1}s]",
                    preset.name,
                    n,
                    cal.hockney.alpha_secs * 1e6,
                    cal.hockney.beta_secs_per_byte * 1e9,
                    cal.hockney.bandwidth_bytes_per_sec() / 1e6,
                    cal.signature.gamma,
                    cal.signature.delta_secs * 1e3,
                    cal.signature.cutoff_bytes,
                    cal.signature.fit_r_squared,
                    t0.elapsed().as_secs_f64(),
                );
            }
            Err(e) => println!("{:<17} calibration failed: {e}", preset.name),
        }
    }
}
