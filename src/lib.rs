//! # alltoall-contention
//!
//! Facade crate for the reproduction of Steffenel, *Modeling Network
//! Contention Effects on All-to-All Operations* (CLUSTER 2006).
//!
//! The workspace builds, from scratch:
//!
//! * [`simnet`] — a packet-level discrete-event network simulator with
//!   TCP-like (lossy, retransmitting) and GM-like (lossless, backpressured)
//!   transports, finite-buffer switches and oversubscribable uplinks;
//! * [`simmpi`] — an MPI-like layer (eager/rendezvous point-to-point,
//!   Direct Exchange and baseline All-to-All algorithms, timing harnesses);
//! * [`contention_model`] — the paper's contribution: Hockney parameters,
//!   total-exchange lower bounds, the §6 throughput-under-contention model
//!   and the §7 contention-signature model `(γ, δ, M)`;
//! * [`contention_lab`] — cluster presets (Fast Ethernet, Gigabit Ethernet,
//!   Myrinet) and one experiment module per paper figure;
//! * [`contention_stats`] — the statistics and GLS machinery underneath.
//!
//! ## Quickstart
//!
//! ```no_run
//! use alltoall_contention::prelude::*;
//!
//! // Build the Gigabit Ethernet preset at 16 nodes and calibrate a
//! // contention signature from simulated measurements.
//! let preset = ClusterPreset::gigabit_ethernet();
//! let calibration = calibrate_signature(&preset, 16, &default_sample_sizes(), 42);
//! let signature = calibration.expect("calibration").signature;
//! // Predict an All-to-All at 32 processes × 512 KiB messages.
//! let t = signature.predict(32, 512 * 1024);
//! println!("predicted completion: {t:.3} s");
//! ```

pub use contention_lab;
pub use contention_model;
pub use contention_stats;
pub use simmpi;
pub use simnet;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use contention_lab::presets::ClusterPreset;
    pub use contention_lab::runner::{
        calibrate_report, calibrate_signature, default_sample_sizes, measure_alltoall_curve,
        measure_hockney, SweepConfig,
    };
    pub use contention_model::calibration::{Calibration, CalibrationInput};
    pub use contention_model::hockney::HockneyParams;
    pub use contention_model::metrics::{estimation_error_percent, AccuracyPoint};
    pub use contention_model::models::CompletionModel;
    pub use contention_model::signature::ContentionSignature;
    pub use contention_model::throughput::ThroughputModel;
    pub use simmpi::alltoall::AllToAllAlgorithm;
}
