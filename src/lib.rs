//! # alltoall-contention
//!
//! Facade crate for the reproduction of Steffenel, *Modeling Network
//! Contention Effects on All-to-All Operations* (CLUSTER 2006).
//!
//! The workspace builds, from scratch:
//!
//! * [`simnet`] — a packet-level discrete-event network simulator with
//!   TCP-like (lossy, retransmitting) and GM-like (lossless, backpressured)
//!   transports, finite-buffer switches and oversubscribable uplinks;
//! * [`simmpi`] — an MPI-like layer (eager/rendezvous point-to-point,
//!   Direct Exchange and baseline All-to-All algorithms, timing harnesses);
//! * [`contention_model`] — the paper's contribution: Hockney parameters,
//!   total-exchange lower bounds, the §6 throughput-under-contention model
//!   and the §7 contention-signature model `(γ, δ, M)`;
//! * [`contention_lab`] — cluster presets (Fast Ethernet, Gigabit Ethernet,
//!   Myrinet) and one experiment module per paper figure;
//! * [`contention_stats`] — the statistics and GLS machinery underneath.
//!
//! ## Quickstart
//!
//! The library entry point is the [`contention_scenario`] crate's
//! [`Session`](contention_scenario::session::Session) facade: build a
//! scenario programmatically, run it (streaming progress if you want it),
//! and render a versioned report.
//!
//! ```no_run
//! use alltoall_contention::prelude::*;
//!
//! let spec = ScenarioBuilder::new("my-sweep")
//!     .preset("gigabit-ethernet")
//!     .uniform("direct")
//!     .nodes([8, 16, 24])
//!     .message_bytes([64 * 1024, 512 * 1024])
//!     .build()
//!     .expect("valid spec");
//! let session = Session::builder().workers(4).build().unwrap();
//! let report = session.run(&spec).expect("runs");
//! println!("{}", report.render(ReportFormat::Text));
//! ```

pub use contention_lab;
pub use contention_model;
pub use contention_scenario;
pub use contention_stats;
pub use simmpi;
pub use simnet;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use contention_lab::presets::ClusterPreset;
    pub use contention_lab::runner::{
        calibrate_report, calibrate_signature, default_sample_sizes, measure_alltoall_curve,
        measure_hockney, SweepConfig,
    };
    pub use contention_model::calibration::{Calibration, CalibrationInput};
    pub use contention_model::hockney::HockneyParams;
    pub use contention_model::metrics::{estimation_error_percent, AccuracyPoint};
    pub use contention_model::models::CompletionModel;
    pub use contention_model::signature::ContentionSignature;
    pub use contention_model::throughput::ThroughputModel;
    pub use contention_scenario::prelude::{
        CalibrationCache, CancelToken, CtnError, ModelKind, Placement, Report, ReportFormat,
        RunEvent, RunObserver, ScenarioBuilder, ScenarioSpec, Session, SessionBuilder,
    };
    pub use contention_scenario::registry;
    pub use contention_scenario::spec::{LinkSpec, SwitchSpec, TopologySpec, WorkloadSpec};
    pub use simmpi::alltoall::AllToAllAlgorithm;
}
