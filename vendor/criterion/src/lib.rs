//! Minimal in-repo substitute for `criterion` (the build environment
//! cannot reach crates.io). Benchmarks compile and run with `cargo bench`,
//! measure wall-clock medians over a configurable number of samples, and
//! print one line per benchmark — no statistical analysis, HTML reports,
//! or regression detection. The API surface matches what this workspace's
//! benches use. Replace with the real crate by repointing the workspace
//! dependency.
//!
//! Two command-line flags are honoured by [`criterion_main!`]:
//!
//! * `--test` — run every benchmark exactly once (smoke mode, like real
//!   criterion's `cargo bench -- --test`);
//! * `--save-json <path>` — write the collected results as a JSON snapshot
//!   (`{"benchmarks": [{"name", "median_ns", "throughput"?}]}`). This is an
//!   extension over real criterion (which persists baselines under
//!   `target/criterion/` instead); it exists so CI can track a perf
//!   trajectory as one reviewable file.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Smoke mode: run each benchmark once, skipping the warm-up.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// One finished benchmark, for the optional JSON snapshot.
struct Record {
    name: String,
    median_ns: u128,
    throughput: Option<(Throughput, f64)>,
}

fn records() -> &'static Mutex<Vec<Record>> {
    static RECORDS: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Parses the harness arguments. Called by [`criterion_main!`] before any
/// group runs; returns the `--save-json` path if one was given. Unknown
/// flags (filters, `--bench`) are accepted and ignored.
pub fn parse_harness_args() -> Option<String> {
    let mut save = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--test" => TEST_MODE.store(true, Ordering::Relaxed),
            "--save-json" => save = args.next(),
            _ => {}
        }
    }
    save
}

/// Writes the JSON snapshot of every benchmark run so far. Called by
/// [`criterion_main!`] after all groups finish.
pub fn save_json_snapshot(path: &str) {
    let records = records().lock().expect("records lock");
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}",
            r.name.replace('"', "\\\""),
            r.median_ns
        ));
        match r.throughput {
            Some((Throughput::Bytes(_), rate)) => {
                out.push_str(&format!(", \"bytes_per_sec\": {rate:.1}"));
            }
            Some((Throughput::Elements(_), rate)) => {
                out.push_str(&format!(", \"elements_per_sec\": {rate:.1}"));
            }
            None => {}
        }
        out.push_str(if i + 1 < records.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("criterion substitute: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("saved benchmark snapshot to {path}");
}

/// How `iter_batched` amortizes setup cost (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !TEST_MODE.load(Ordering::Relaxed) {
            black_box(f()); // warm-up, untimed
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.recorded.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if !TEST_MODE.load(Ordering::Relaxed) {
            black_box(routine(setup())); // warm-up, untimed
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }

    fn median(&self) -> Duration {
        let mut v = self.recorded.clone();
        v.sort_unstable();
        v.get(v.len() / 2).copied().unwrap_or_default()
    }
}

fn run_one(
    group: &str,
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let samples = if TEST_MODE.load(Ordering::Relaxed) {
        1
    } else {
        samples
    };
    let mut b = Bencher {
        samples,
        recorded: Vec::new(),
    };
    f(&mut b);
    let median = b.median();
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut recorded_rate = None;
    let rate = match throughput {
        Some(t @ Throughput::Bytes(n)) if median > Duration::ZERO => {
            let per_sec = n as f64 / median.as_secs_f64();
            recorded_rate = Some((t, per_sec));
            format!("  {:.1} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        Some(t @ Throughput::Elements(n)) if median > Duration::ZERO => {
            let per_sec = n as f64 / median.as_secs_f64();
            recorded_rate = Some((t, per_sec));
            format!("  {per_sec:.1} elem/s")
        }
        _ => String::new(),
    };
    println!("bench {label:<50} median {median:>12.3?}{rate}");
    records().lock().expect("records lock").push(Record {
        name: label,
        median_ns: median.as_nanos(),
        throughput: recorded_rate,
    });
}

/// A named set of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets samples per benchmark (the substitute caps at 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 20);
        self
    }

    /// Accepted for API parity; the substitute ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into_id(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into_id(),
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into_id(), 10, None, &mut f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions. Honours `--test` (smoke
/// mode) and `--save-json <path>`; other `--bench`/filter arguments are
/// accepted and ignored so `cargo bench` invocations work.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let save_json = $crate::parse_harness_args();
            $($group();)+
            if let Some(path) = save_json {
                $crate::save_json_snapshot(&path);
            }
        }
    };
}
