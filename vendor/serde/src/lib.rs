//! Minimal in-repo substitute for `serde`, present because the build
//! environment cannot reach crates.io. It provides the two trait names and
//! the derive macros so `#[derive(Serialize, Deserialize)]` compiles; the
//! traits are blanket-implemented markers. Nothing in this repo serializes
//! through serde yet — structured output (JSON/CSV/TOML) is hand-rolled in
//! `contention-scenario` and `contention-lab`. Swap for the real crate by
//! pointing the workspace dependency at a registry version.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
