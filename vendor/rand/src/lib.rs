//! Minimal in-repo substitute for the `rand` crate (the build environment
//! cannot reach crates.io), covering exactly the API surface this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`
//! over integer and float ranges, and `seq::SliceRandom::{shuffle,
//! choose}`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real crate's ChaCha12, but every consumer in this repo
//! only requires determinism (same seed ⇒ same stream), not a particular
//! stream, so the substitution is behavior-preserving for the test suite
//! and simulators.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as u128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for the real
    /// crate's ChaCha12-based `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and element choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(0u64..=0);
            assert_eq!(w, 0);
            let x = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
