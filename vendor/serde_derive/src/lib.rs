//! No-op substitute for `serde_derive`, used because the build environment
//! has no access to crates.io. The repo only ever *derives* the serde
//! traits (no code serializes through them yet), so the derives expand to
//! nothing. Replace with the real crate when a registry is available.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
