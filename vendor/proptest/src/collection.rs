//! Collection strategies: `vec` and `btree_set` with flexible size
//! specifications.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Accepted size specifications: a fixed length, `lo..hi`, or `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_one(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample_one(rng)).collect()
    }
}

/// Vector strategy of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample_one(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Duplicates don't grow the set; bound the attempts so a narrow
        // element domain cannot loop forever.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(50) + 100 {
            set.insert(self.element.sample_one(rng));
            attempts += 1;
        }
        set
    }
}

/// Set strategy of `element` values with (target) cardinality in `size`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
