//! Choosing among explicit alternatives.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Strategy drawing one of a fixed set of values.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    choices: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn sample_one(&self, rng: &mut StdRng) -> T {
        self.choices
            .choose(rng)
            .expect("select needs at least one choice")
            .clone()
    }
}

/// Uniformly selects one element of `choices`.
pub fn select<T: Clone + std::fmt::Debug>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select needs at least one choice");
    Select { choices }
}
