//! Value-generation strategies: numeric ranges, tuples, `Just`, `any`,
//! and `prop_map`. Sampling only — no shrinking.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample_one(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keeps only values satisfying `pred`, resampling up to a bounded
    /// number of times (panics if the predicate is too selective).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            pred,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_one(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.sample_one(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample_one(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.sample_one(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Always produces a clone of the held value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_one(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_one(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_one(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample_one(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample_one(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Whole-domain strategy for `A` (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample_one(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}
