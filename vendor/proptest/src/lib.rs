//! Minimal in-repo substitute for `proptest` (the build environment cannot
//! reach crates.io). It keeps the crate's *testing semantics* — randomized
//! inputs drawn from strategies, a deterministic per-test stream, multiple
//! cases per test, `prop_assert*` failure reporting with the failing case
//! index — but does **not** implement shrinking or persistence. The API
//! surface is exactly what this workspace's test suites use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) {..} }`
//! * numeric `Range`/`RangeInclusive` strategies, tuples (arity 2–4),
//!   `any::<T>()`, `Just`, `.prop_map(..)`
//! * `prop::collection::{vec, btree_set}`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//!
//! Replace with the real crate by repointing the workspace dependency.

#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of the real crate's `prop` re-export module, so
/// `prop::collection::vec(..)` works after a prelude glob import.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each function runs `config.cases` times with
/// fresh samples from its strategies; the first failing case panics with
/// the case index and the generated inputs' debug output omitted (no
/// shrinking in this substitute).
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr); $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample_one(&($strat), &mut __rng);)*
                    let __result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}", a, b);
    }};
}

/// Skips the rest of the current case unless `cond` holds (the substitute
/// counts the case as passed rather than resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
