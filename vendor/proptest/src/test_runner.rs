//! Case configuration, failure type, and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Alias kept for API parity with the real crate.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result alias matching the real crate.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG for one case of one test: seeded from the test's
/// fully qualified name and the case index, so runs are reproducible and
/// independent of test execution order.
pub fn rng_for(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}
