//! Self-checks of the substitute harness: properties actually run, draw
//! varying inputs, and report failures.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ranges_respect_bounds(n in 2usize..40, f in 0.5f64..2.0, b in any::<bool>()) {
        prop_assert!((2..40).contains(&n));
        prop_assert!((0.5..2.0).contains(&f));
        let _ = b;
    }

    #[test]
    fn collections_respect_sizes(
        v in prop::collection::vec((0usize..8, 1u64..100), 1..12),
        s in prop::collection::btree_set(-50i64..50, 3..10),
        exact in prop::collection::vec(0.0f64..1.0, 4),
    ) {
        prop_assert!((1..12).contains(&v.len()));
        prop_assert!(s.len() <= 10);
        prop_assert_eq!(exact.len(), 4);
    }

    #[test]
    fn mapped_and_selected_strategies_compose(
        row in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| vec![1.0, x, y]),
        pick in prop::sample::select(vec![512u64, 1024, 2048]),
    ) {
        prop_assert_eq!(row.len(), 3);
        prop_assert!([512u64, 1024, 2048].contains(&pick));
    }
}

#[test]
fn failing_property_panics() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    });
    assert!(result.is_err(), "a failing property must panic");
}

#[test]
fn inputs_vary_across_cases() {
    let mut seen = std::collections::HashSet::new();
    for case in 0..32 {
        let mut rng = proptest::test_runner::rng_for("inputs_vary", case);
        seen.insert(proptest::strategy::Strategy::sample_one(
            &(0u64..1_000_000),
            &mut rng,
        ));
    }
    assert!(
        seen.len() > 20,
        "expected diverse samples, got {}",
        seen.len()
    );
}
