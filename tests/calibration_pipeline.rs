//! End-to-end integration: the paper's calibration pipeline against the
//! simulated clusters, at small scale (these run in debug mode).

use alltoall_contention::prelude::*;

const SIZES: [u64; 4] = [32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024];

#[test]
fn every_preset_calibrates_successfully() {
    // The signature model's domain is saturated (or at least regular)
    // networks. Fast Ethernet and Myrinet behave regularly at any scale;
    // the trunk-contended Gigabit Ethernet needs more ranks before its
    // stall noise averages out (the paper fits it at n'=40), so it gets a
    // larger sample count and sizes here.
    for (preset, sample_n, sizes) in [
        (ClusterPreset::fast_ethernet(), 6, SIZES.to_vec()),
        (ClusterPreset::myrinet(), 6, SIZES.to_vec()),
        (
            ClusterPreset::gigabit_ethernet(),
            16,
            vec![128 * 1024, 256 * 1024, 384 * 1024, 512 * 1024],
        ),
    ] {
        let cal = calibrate_signature(&preset, sample_n, &sizes, 42)
            .unwrap_or_else(|e| panic!("{} failed: {e}", preset.name));
        assert!(cal.signature.gamma > 0.5, "{}: gamma sane", preset.name);
        assert!(cal.signature.gamma < 20.0, "{}: gamma sane", preset.name);
        assert!(cal.hockney.alpha_secs > 0.0);
        assert!(cal.hockney.beta_secs_per_byte > 0.0);
        assert!(cal.signature.fit_r_squared > 0.5, "{}", preset.name);
    }
}

#[test]
fn gigabit_below_saturation_fails_loudly_not_silently() {
    // Below its saturation scale, Gigabit Ethernet measurements are RTO
    // noise and the fit must refuse (non-physical γ) rather than hand back
    // a garbage signature — the paper likewise restricts its model's
    // domain to saturated networks.
    match calibrate_signature(&ClusterPreset::gigabit_ethernet(), 6, &SIZES, 42) {
        Err(contention_model::ModelError::NonPhysical { .. }) | Ok(_) => {}
        Err(other) => panic!("unexpected error class: {other}"),
    }
}

#[test]
fn hockney_beta_tracks_link_speed() {
    // β from ping-pong must reflect each network's wire rate within the
    // protocol-overhead margin.
    let expectations = [
        ("fast-ethernet", 80e-9, 95e-9),
        ("gigabit-ethernet", 8e-9, 10e-9),
        ("myrinet", 3.9e-9, 5e-9),
    ];
    for (name, lo, hi) in expectations {
        let preset = ClusterPreset::all()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap();
        let h = measure_hockney(&preset, 7).unwrap();
        assert!(
            h.beta_secs_per_byte > lo && h.beta_secs_per_byte < hi,
            "{name}: beta = {}",
            h.beta_secs_per_byte
        );
    }
}

#[test]
fn myrinet_signature_is_pure_ratio_near_two() {
    // The paper's Myrinet result: no affine term, ratio from the duplex
    // bottleneck. Our mechanistic model gives γ ≈ 2 (the paper measured
    // 2.5 on real hardware).
    let cal = calibrate_signature(&ClusterPreset::myrinet(), 8, &SIZES, 42).unwrap();
    assert!(
        cal.signature.gamma > 1.6 && cal.signature.gamma < 2.4,
        "gamma = {}",
        cal.signature.gamma
    );
    assert!(
        cal.signature.delta_secs < 1e-3,
        "delta = {}",
        cal.signature.delta_secs
    );
}

#[test]
fn fast_ethernet_tracks_the_lower_bound() {
    // γ ≈ 1: the Fast Ethernet fabric never saturates at these scales.
    let cal = calibrate_signature(&ClusterPreset::fast_ethernet(), 6, &SIZES, 42).unwrap();
    assert!(
        cal.signature.gamma > 0.9 && cal.signature.gamma < 1.4,
        "gamma = {}",
        cal.signature.gamma
    );
}

#[test]
fn gigabit_shows_more_contention_than_fast_ethernet() {
    // Fitted signatures on GbE need a saturated network (the paper fits at
    // n'=40 over 100-run averages); at integration-test scale we compare
    // the raw measured-over-bound ratios instead, which are robust.
    let m = 512 * 1024;
    let cfg = SweepConfig {
        seed: 5,
        ..SweepConfig::default()
    };
    let ratio = |preset: &ClusterPreset| {
        let h = measure_hockney(preset, 5).unwrap();
        let t = contention_lab::runner::measure_alltoall_point(preset, 10, m, &cfg);
        t / h.alltoall_lower_bound(10, m)
    };
    let fe = ratio(&ClusterPreset::fast_ethernet());
    let ge = ratio(&ClusterPreset::gigabit_ethernet());
    assert!(
        ge > fe * 1.2,
        "GbE measured/bound {ge:.2} must clearly exceed FE {fe:.2}"
    );
}

#[test]
fn signature_predicts_unseen_node_count() {
    // Fit at n'=8, predict at n=12, compare against a fresh measurement.
    // The paper reports <10% in saturation; we allow a loose 40% at this
    // tiny, noisy scale — the point is extrapolation, not luck.
    let preset = ClusterPreset::myrinet();
    let cal = calibrate_signature(&preset, 8, &SIZES, 42).unwrap();
    let m = 128 * 1024;
    let predicted = cal.signature.predict(12, m);
    let cfg = SweepConfig {
        seed: 99,
        ..SweepConfig::default()
    };
    let measured = contention_lab::runner::measure_alltoall_point(&preset, 12, m, &cfg);
    let err = estimation_error_percent(measured, predicted);
    assert!(
        err.abs() < 40.0,
        "error {err}% (measured {measured}, predicted {predicted})"
    );
}

#[test]
fn prediction_beats_the_naive_linear_model_under_contention() {
    // The paper's whole premise: under contention the naive (n−1)(α+βm)
    // model is badly optimistic; the signature fixes it. Myrinet's duplex
    // bottleneck gives a clean γ ≈ 2 contention regime at small scale.
    let preset = ClusterPreset::myrinet();
    let report = calibrate_report(&preset, 8, &SIZES, 42).unwrap();
    let naive = report.calibration.hockney;
    let sig = report.calibration.signature;
    let m = 256 * 1024;
    let cfg = SweepConfig {
        seed: 77,
        ..SweepConfig::default()
    };
    let measured = contention_lab::runner::measure_alltoall_point(&preset, 12, m, &cfg);
    let err_naive = estimation_error_percent(measured, naive.alltoall_lower_bound(12, m)).abs();
    let err_sig = estimation_error_percent(measured, sig.predict(12, m)).abs();
    assert!(
        err_sig < err_naive,
        "signature ({err_sig:.1}%) must beat naive ({err_naive:.1}%)"
    );
}
