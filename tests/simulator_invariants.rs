//! Cross-crate physical invariants: the simulator cannot beat physics, the
//! lower bound is a genuine lower bound on lossless fabrics, stress
//! behavior matches the paper's qualitative observations.

use alltoall_contention::prelude::*;
use simmpi::harness::{alltoall_times, stress_run};

#[test]
fn lossless_alltoall_never_beats_proposition_1() {
    // On Myrinet (lossless, no hiccups) the measured completion must be at
    // least the Proposition 1 bound computed from measured α/β — Claim 3
    // holds in the simulated world.
    let preset = ClusterPreset::myrinet();
    let h = measure_hockney(&preset, 3).unwrap();
    for n in [4usize, 8] {
        for m in [64 * 1024u64, 512 * 1024] {
            let mut w = preset.build_world(n, 5);
            let t = alltoall_times(
                &mut w,
                AllToAllAlgorithm::DirectExchangeNonblocking,
                m,
                0,
                1,
            )[0];
            let bound = h.alltoall_lower_bound(n, m);
            assert!(
                t >= bound * 0.95,
                "n={n} m={m}: measured {t} below bound {bound}"
            );
        }
    }
}

#[test]
fn stress_throughput_bounded_by_wire_rate() {
    let preset = ClusterPreset::gigabit_ethernet();
    let mut w = preset.build_world(8, 11);
    let result = stress_run(&mut w, &[(0, 4), (1, 5), (2, 6), (3, 7)], 2_000_000);
    for &t in &result.times_secs {
        let bw = result.bytes as f64 / t;
        assert!(bw < 125e6, "per-connection bandwidth {bw} beats the wire");
        assert!(bw > 1e6, "implausibly slow connection: {bw} B/s");
    }
}

#[test]
fn contention_reduces_mean_stress_throughput() {
    // The fig. 2 shape at miniature scale: more simultaneous connections,
    // lower average per-connection bandwidth.
    let preset = ClusterPreset::gigabit_ethernet();
    let mut w1 = preset.build_world(2, 13);
    let single = stress_run(&mut w1, &[(0, 1)], 4_000_000).mean_throughput();
    let mut w8 = preset.build_world(16, 13);
    let pairs: Vec<(usize, usize)> = (0..8).map(|i| (i, i + 8)).collect();
    let many = stress_run(&mut w8, &pairs, 4_000_000).mean_throughput();
    assert!(
        many < single,
        "8 connections ({many:.0} B/s) should average below 1 ({single:.0} B/s)"
    );
}

#[test]
fn alltoall_time_scales_with_message_size_when_bandwidth_bound() {
    // Doubling message size at fixed n roughly doubles completion in the
    // bandwidth-bound regime (Myrinet: lossless, no stall quantization).
    let preset = ClusterPreset::myrinet();
    let mut w = preset.build_world(8, 21);
    let t1 = alltoall_times(
        &mut w,
        AllToAllAlgorithm::DirectExchangeNonblocking,
        128 * 1024,
        1,
        2,
    );
    let t2 = alltoall_times(
        &mut w,
        AllToAllAlgorithm::DirectExchangeNonblocking,
        256 * 1024,
        1,
        2,
    );
    let m1: f64 = t1.iter().sum::<f64>() / t1.len() as f64;
    let m2: f64 = t2.iter().sum::<f64>() / t2.len() as f64;
    assert!(m2 > m1 * 1.6, "size doubling: {m1} -> {m2}");
    assert!(m2 < m1 * 2.6, "size doubling: {m1} -> {m2}");
}

#[test]
fn bruck_beats_direct_for_tiny_messages_on_fast_ethernet() {
    // The classic trade-off the baselines exist to show: log-round Bruck
    // wins when start-ups dominate (tiny messages, slow network).
    let preset = ClusterPreset::fast_ethernet();
    let m = 256; // tiny payloads: start-up bound
    let mut w1 = preset.build_world(8, 31);
    let direct = alltoall_times(&mut w1, AllToAllAlgorithm::DirectExchange, m, 1, 2);
    let mut w2 = preset.build_world(8, 31);
    let bruck = alltoall_times(&mut w2, AllToAllAlgorithm::Bruck, m, 1, 2);
    let d: f64 = direct.iter().sum::<f64>() / direct.len() as f64;
    let b: f64 = bruck.iter().sum::<f64>() / bruck.len() as f64;
    assert!(
        b < d,
        "bruck {b} should beat direct {d} at 256-byte messages"
    );
}

#[test]
fn direct_beats_bruck_for_large_messages() {
    // And the reverse at bandwidth-bound sizes (Bruck retransmits bytes).
    let preset = ClusterPreset::myrinet();
    let m = 512 * 1024;
    let mut w1 = preset.build_world(8, 37);
    let direct = alltoall_times(
        &mut w1,
        AllToAllAlgorithm::DirectExchangeNonblocking,
        m,
        1,
        2,
    );
    let mut w2 = preset.build_world(8, 37);
    let bruck = alltoall_times(&mut w2, AllToAllAlgorithm::Bruck, m, 1, 2);
    let d: f64 = direct.iter().sum::<f64>() / direct.len() as f64;
    let b: f64 = bruck.iter().sum::<f64>() / bruck.len() as f64;
    assert!(
        d < b,
        "direct {d} should beat bruck {b} at 512 KiB messages"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let preset = ClusterPreset::myrinet();
        let cal =
            calibrate_signature(&preset, 6, &[65_536, 131_072, 262_144, 524_288], 1234).unwrap();
        (cal.signature.gamma, cal.signature.delta_secs)
    };
    assert_eq!(run(), run());
}
