//! Cross-validation between the two network models: the fluid (max-min
//! fair, lossless, zero-overhead) model must lower-bound the packet engine,
//! and on a lossless fabric the two should agree within protocol-overhead
//! margins. The gap between them isolates protocol contention (TCP loss
//! recovery) from topological contention (shared trunks, half-duplex
//! buses).

use alltoall_contention::prelude::*;
use simmpi::harness::alltoall_times;
use simnet::fluid::FluidNet;
use simnet::ids::HostId;

fn fluid_alltoall(preset: &ClusterPreset, n: usize, m: u64) -> f64 {
    // Build the same topology the preset would use and run the fluid model
    // over the same rank→host placement.
    let world = preset.build_world(n, 1);
    let topo = world.sim().topology();
    let hosts: Vec<HostId> = (0..n).map(HostId::new).collect();
    FluidNet::alltoall_estimate(topo, &hosts, m)
}

#[test]
fn fluid_lower_bounds_the_packet_engine_everywhere() {
    for preset in ClusterPreset::all() {
        for &(n, m) in &[(4usize, 262_144u64), (8, 131_072)] {
            let fluid = fluid_alltoall(&preset, n, m);
            let mut world = preset.build_world(n, 5);
            let packet = alltoall_times(
                &mut world,
                AllToAllAlgorithm::DirectExchangeNonblocking,
                m,
                0,
                1,
            )[0];
            assert!(
                packet > fluid * 0.98,
                "{}: packet {packet} beat fluid {fluid} at n={n} m={m}",
                preset.name
            );
        }
    }
}

#[test]
fn fluid_and_packet_agree_on_lossless_fabric() {
    // Myrinet: no loss, tiny overheads — the packet result should sit
    // within ~35% above the fluid ideal (envelopes, CTS round-trips,
    // packetization).
    let preset = ClusterPreset::myrinet();
    let (n, m) = (8usize, 524_288u64);
    let fluid = fluid_alltoall(&preset, n, m);
    let mut world = preset.build_world(n, 9);
    let packet = alltoall_times(
        &mut world,
        AllToAllAlgorithm::DirectExchangeNonblocking,
        m,
        1,
        2,
    )
    .iter()
    .sum::<f64>()
        / 2.0;
    let ratio = packet / fluid;
    assert!(ratio > 1.0, "packet can't beat fluid: {ratio}");
    assert!(ratio < 1.35, "lossless packet vs fluid diverged: {ratio}");
}

#[test]
fn fluid_gap_reveals_protocol_contention_on_ethernet() {
    // On the contended GbE fabric the packet engine pays TCP loss recovery
    // that the fluid model cannot see: the gap must be large.
    let preset = ClusterPreset::gigabit_ethernet();
    let (n, m) = (16usize, 524_288u64);
    let fluid = fluid_alltoall(&preset, n, m);
    let mut world = preset.build_world(n, 13);
    let packet = alltoall_times(
        &mut world,
        AllToAllAlgorithm::DirectExchangeNonblocking,
        m,
        0,
        2,
    )
    .iter()
    .sum::<f64>()
        / 2.0;
    assert!(
        packet > fluid * 1.5,
        "expected protocol contention: packet {packet} vs fluid {fluid}"
    );
}

#[test]
fn fluid_captures_the_myrinet_bus_ratio() {
    // The fluid model alone reproduces the topological part of Myrinet's
    // γ: the half-duplex bus doubles All-to-All cost relative to the
    // per-host wire bound.
    let preset = ClusterPreset::myrinet();
    let (n, m) = (8usize, 1_048_576u64);
    let fluid = fluid_alltoall(&preset, n, m);
    // Receiver wire bound without the bus: (n−1)·m at 250 MB/s.
    let wire_bound = (n - 1) as f64 * m as f64 / 250e6;
    let ratio = fluid / wire_bound;
    assert!(
        (ratio - 2.0 * 250.0 / 265.0).abs() < 0.1,
        "bus ratio = {ratio}"
    );
}
