//! The paper's future work, realized: contention signatures for
//! collectives beyond the All-to-All (broadcast, scatter, gather,
//! all-gather), fitted on the simulated clusters.
//!
//! ```text
//! cargo run --release --example collective_signatures
//! ```
//!
//! For each network and collective: fit γ = measured/bound at a sample
//! rank count, then validate the prediction at a rank count the fit never
//! saw. The Hockney baseline under every bound comes from one `Session`
//! (the scenario engine's calibration path, memoized per fabric in the
//! session's cache); the collective curves use the lab's measurement
//! drivers, which operate below the scenario layer.

use alltoall_contention::prelude::*;
use contention_lab::runner::{fit_cfg_for, measure_collective_curve};
use contention_model::collective::{CollectiveShape, CollectiveSignature};
use simmpi::collectives::Collective;

fn main() {
    let sizes = [32 * 1024u64, 128 * 1024, 512 * 1024];
    let pairs: [(Collective, CollectiveShape); 4] = [
        (
            Collective::Broadcast { root: 0 },
            CollectiveShape::Broadcast,
        ),
        (Collective::Scatter { root: 0 }, CollectiveShape::Scatter),
        (Collective::Gather { root: 0 }, CollectiveShape::Gather),
        (Collective::AllGatherRing, CollectiveShape::AllGather),
    ];
    let (fit_n, check_n, check_m) = (8usize, 12usize, 256 * 1024u64);
    let session = Session::builder().workers(2).base_seed(42).build().unwrap();

    for preset in ClusterPreset::all() {
        let spec = ScenarioBuilder::new(format!("collectives-{}", preset.name))
            .preset(preset.name)
            .uniform("direct")
            .build()
            .expect("preset spec is valid");
        let hockney = match session.calibrate_hockney(&spec) {
            Ok(h) => h,
            Err(e) => {
                println!("{}: hockney failed: {e}", preset.name);
                continue;
            }
        };
        println!(
            "\n== {} (alpha={:.0}us, beta={:.2}ns/B) ==",
            preset.name,
            hockney.alpha_secs * 1e6,
            hockney.beta_secs_per_byte * 1e9
        );
        println!(
            "{:<18} {:>8} {:>8} {:>12} {:>12} {:>8}",
            "collective", "gamma", "R^2", "pred(12)", "meas(12)", "err%"
        );
        for (collective, shape) in pairs {
            let cfg = fit_cfg_for(42);
            let samples = measure_collective_curve(&preset, collective, fit_n, &sizes, &cfg);
            let sig = match CollectiveSignature::fit(shape, hockney, fit_n, &samples) {
                Ok(s) => s,
                Err(e) => {
                    println!("{:<18} fit failed: {e}", collective.name());
                    continue;
                }
            };
            let check_cfg = fit_cfg_for(77);
            let measured =
                measure_collective_curve(&preset, collective, check_n, &[check_m], &check_cfg)[0].1;
            let predicted = sig.predict(check_n, check_m);
            println!(
                "{:<18} {:>8.3} {:>8.4} {:>11.4}s {:>11.4}s {:>+7.1}%",
                collective.name(),
                sig.gamma,
                sig.fit_r_squared,
                predicted,
                measured,
                estimation_error_percent(measured, predicted)
            );
        }
    }
    println!(
        "\nreading guide: gamma ≈ 1 means the collective rides the bound; \
         larger gamma = more contention. Rooted collectives see less \
         contention than the All-to-All because only one port saturates."
    );
}
