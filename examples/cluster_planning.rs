//! Capacity planning with a contention signature: "my FFT does an
//! All-to-All of 256 KiB per pair every iteration — how many nodes can I
//! use before communication dominates, and what does an iteration cost?"
//!
//! ```text
//! cargo run --release --example cluster_planning
//! ```
//!
//! This is the use case the paper motivates: once a network's signature is
//! known, predictions for any (n, m) cost a multiplication, not a cluster
//! reservation.

use alltoall_contention::prelude::*;

/// A 3-D FFT-style workload: per-iteration compute scales as 1/n, the
/// transpose is an All-to-All of `total_bytes / n²` per pair.
struct FftWorkload {
    total_bytes: u64,
    compute_secs_single_node: f64,
}

impl FftWorkload {
    fn alltoall_message(&self, n: usize) -> u64 {
        (self.total_bytes / (n * n) as u64).max(1)
    }

    fn iteration_time(&self, n: usize, sig: &ContentionSignature) -> (f64, f64) {
        let compute = self.compute_secs_single_node / n as f64;
        let comm = sig.predict(n, self.alltoall_message(n));
        (compute, comm)
    }
}

fn main() {
    // Calibrate each network once at a modest sample size.
    let sizes = [
        64 * 1024u64,
        128 * 1024,
        256 * 1024,
        512 * 1024,
        1024 * 1024,
    ];
    let workload = FftWorkload {
        total_bytes: 1 << 30, // a 1 GiB grid
        compute_secs_single_node: 20.0,
    };

    for preset in ClusterPreset::all() {
        let report = match calibrate_report(&preset, 16, &sizes, 42) {
            Ok(r) => r,
            Err(e) => {
                println!("{}: calibration failed: {e}", preset.name);
                continue;
            }
        };
        let sig = report.calibration.signature;
        println!(
            "\n== {} (gamma={:.2}, delta={:.2} ms) ==",
            preset.name,
            sig.gamma,
            sig.delta_secs * 1e3
        );
        println!(
            "{:>6} {:>12} {:>10} {:>10} {:>8}",
            "nodes", "msg/pair", "compute", "alltoall", "comm%"
        );
        let mut best = (0usize, f64::INFINITY);
        for &n in &[4usize, 8, 16, 32, 64] {
            if n > preset.max_hosts() {
                continue;
            }
            let (compute, comm) = workload.iteration_time(n, &sig);
            let total = compute + comm;
            if total < best.1 {
                best = (n, total);
            }
            println!(
                "{:>6} {:>12} {:>9.2}s {:>9.2}s {:>7.0}%",
                n,
                workload.alltoall_message(n),
                compute,
                comm,
                comm / total * 100.0
            );
        }
        println!(
            "best iteration time: {:.2} s at {} nodes (signature-aware sweet spot)",
            best.1, best.0
        );
    }
}
