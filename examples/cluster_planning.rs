//! Capacity planning with a contention signature: "my FFT does an
//! All-to-All of 256 KiB per pair every iteration — how many nodes can I
//! use before communication dominates, and what does an iteration cost?"
//!
//! ```text
//! cargo run --release --example cluster_planning
//! ```
//!
//! This is the use case the paper motivates: once a network's signature is
//! known, predictions for any (n, m) cost a multiplication, not a cluster
//! reservation. One `Session` calibrates all three clusters — each fabric
//! is described as a spec, fitted once, and memoized in the session's
//! instance-owned cache.

use alltoall_contention::prelude::*;

/// A 3-D FFT-style workload: per-iteration compute scales as 1/n, the
/// transpose is an All-to-All of `total_bytes / n²` per pair.
struct FftWorkload {
    total_bytes: u64,
    compute_secs_single_node: f64,
}

impl FftWorkload {
    fn alltoall_message(&self, n: usize) -> u64 {
        (self.total_bytes / (n * n) as u64).max(1)
    }

    fn iteration_time(&self, n: usize, sig: &ContentionSignature) -> (f64, f64) {
        let compute = self.compute_secs_single_node / n as f64;
        let comm = sig.predict(n, self.alltoall_message(n));
        (compute, comm)
    }
}

fn main() {
    let workload = FftWorkload {
        total_bytes: 1 << 30, // a 1 GiB grid
        compute_secs_single_node: 20.0,
    };
    let session = Session::builder().workers(2).base_seed(42).build().unwrap();

    for preset in ClusterPreset::all() {
        // The fabric as a spec: the builder's preset front-end names the
        // paper's calibrated clusters.
        let spec = ScenarioBuilder::new(format!("plan-{}", preset.name))
            .preset(preset.name)
            .uniform("direct")
            .build()
            .expect("preset spec is valid");
        let sig = match session.calibrate_signature(&spec) {
            Ok(s) => s,
            Err(e) => {
                println!("{}: calibration failed: {e}", preset.name);
                continue;
            }
        };
        println!(
            "\n== {} (gamma={:.2}, delta={:.2} ms) ==",
            preset.name,
            sig.gamma,
            sig.delta_secs * 1e3
        );
        println!(
            "{:>6} {:>12} {:>10} {:>10} {:>8}",
            "nodes", "msg/pair", "compute", "alltoall", "comm%"
        );
        let mut best = (0usize, f64::INFINITY);
        for &n in &[4usize, 8, 16, 32, 64] {
            if n > preset.max_hosts() {
                continue;
            }
            let (compute, comm) = workload.iteration_time(n, &sig);
            let total = compute + comm;
            if total < best.1 {
                best = (n, total);
            }
            println!(
                "{:>6} {:>12} {:>9.2}s {:>9.2}s {:>7.0}%",
                n,
                workload.alltoall_message(n),
                compute,
                comm,
                comm / total * 100.0
            );
        }
        println!(
            "best iteration time: {:.2} s at {} nodes (signature-aware sweet spot)",
            best.1, best.0
        );
    }
}
