//! The general total exchange problem (paper §5): an *irregular* exchange
//! where every pair moves a different payload, its MED lower bounds
//! (Claims 1–3), and the simulated completion on each cluster.
//!
//! ```text
//! cargo run --release --example irregular_exchange
//! ```
//!
//! The workload is a block-sparse transpose: heavy diagonal-adjacent
//! blocks, light long-range blocks — the kind of matrix a stencil-ish
//! application redistributes. The Hockney parameters under each bound
//! come from a `Session` (one fit per fabric, cached); the engine's
//! *built-in* irregular workloads (skewed/sparse/permutation) run the
//! same machinery declaratively — see the closing sweep.

use alltoall_contention::prelude::*;
use contention_model::med::Med;
use simmpi::irregular::ExchangeMatrix;

fn block_sparse(n: usize, heavy: u64, light: u64) -> ExchangeMatrix {
    let sizes = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        0
                    } else if (i + 1) % n == j || (j + 1) % n == i {
                        heavy
                    } else {
                        light
                    }
                })
                .collect()
        })
        .collect();
    ExchangeMatrix::new(sizes)
}

fn main() {
    let n = 12;
    let matrix = block_sparse(n, 512 * 1024, 16 * 1024);
    let session = Session::builder().workers(2).base_seed(42).build().unwrap();

    // MED bounds from the paper's §5.
    let mut med = Med::new(n);
    for i in 0..n {
        for j in 0..n {
            let b = matrix.bytes(i, j);
            if b > 0 {
                med.add_message(i, j, b);
            }
        }
    }
    println!("irregular exchange over {n} ranks:");
    println!("  messages        : {}", med.message_count());
    println!(
        "  min start-ups   : {} (Claim 1: max(Δs, Δr))",
        med.min_startups()
    );

    for preset in ClusterPreset::all() {
        let spec = ScenarioBuilder::new(format!("irregular-{}", preset.name))
            .preset(preset.name)
            .uniform("direct")
            .build()
            .expect("preset spec is valid");
        let hockney = match session.calibrate_hockney(&spec) {
            Ok(h) => h,
            Err(e) => {
                println!("{}: hockney failed: {e}", preset.name);
                continue;
            }
        };
        let bound = med.time_lower_bound(&hockney);
        let mut world = preset.build_world(n, 42);
        let programs = matrix.nonblocking_programs();
        let _warm = world.run(programs.clone());
        let measured = world.run(programs).duration_secs();
        println!(
            "  {:<18} bound(Claim 3) = {:>8.4}s   measured = {:>8.4}s   ratio = {:>5.2}",
            preset.name,
            bound,
            measured,
            measured / bound
        );
    }

    // The same regime, declaratively: the engine's skewed workload over
    // the Fast Ethernet cluster, with the MED bound in the error column.
    let skewed = ScenarioBuilder::new("irregular-skewed-sweep")
        .preset("fast-ethernet")
        .skewed(2, 4.0, true)
        .nodes([12])
        .message_bytes([64 * 1024])
        .reps(1)
        .build()
        .expect("valid spec");
    let report = session.run(&skewed).expect("skewed sweep runs");
    let cell = &report.batches[0].cells[0];
    println!(
        "\nskewed sweep cell (n={}, m={}): measured {:.4}s, {:+.1}% vs its MED bound",
        cell.n, cell.message_bytes, cell.mean_secs, cell.error_percent
    );
    println!(
        "\nreading guide: the ratio is each network's contention signature \
         showing through an irregular workload; the bound comes from the \
         busiest port (Claim 2), not from any schedule."
    );
}
