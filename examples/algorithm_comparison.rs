//! Compares All-to-All algorithms under contention: the paper's Direct
//! Exchange (blocking rounds and the post-all variant) against Bruck,
//! pairwise exchange and a ring — on a contended Gigabit Ethernet fabric
//! and on the lossless Myrinet fabric.
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```
//!
//! The motivating observation of the paper's introduction: algorithms tuned
//! for message counts (Bruck) versus bandwidth (direct) trade places as
//! message size grows, and contention shifts the crossover. Each
//! (fabric, algorithm) pair is one generated `ScenarioSpec`; a single
//! `Session` runs them all as one flat cell queue — the programmatic-sweep
//! workflow the builder exists for.

use alltoall_contention::prelude::*;

fn main() {
    let n = 16usize; // power of two so pairwise exchange is legal
    let algorithms = AllToAllAlgorithm::all();
    let sizes = [16 * 1024u64, 128 * 1024, 512 * 1024];
    let presets = ["gigabit-ethernet", "myrinet"];

    // The sweep grid, generated: one spec per (fabric, algorithm).
    let mut specs = Vec::new();
    for preset in presets {
        for algo in &algorithms {
            specs.push(
                ScenarioBuilder::new(format!("algos-{preset}-{}", algo.name()))
                    .preset(preset)
                    .uniform(algo.name())
                    .nodes([n])
                    .message_bytes(sizes)
                    .warmup(1)
                    .reps(1)
                    .build()
                    .expect("generated spec is valid"),
            );
        }
    }

    let session = Session::builder().workers(4).base_seed(42).build().unwrap();
    let report = session.run_many(&specs).expect("comparison sweep runs");

    for (pi, preset) in presets.iter().enumerate() {
        println!("\n== {preset} ({n} ranks) ==");
        print!("{:>10}", "msg bytes");
        for algo in &algorithms {
            print!("{:>12}", algo.name());
        }
        println!();
        for (si, &m) in sizes.iter().enumerate() {
            print!("{m:>10}");
            for (ai, _) in algorithms.iter().enumerate() {
                let batch = &report.batches[pi * algorithms.len() + ai];
                let cell = &batch.cells[si];
                assert_eq!((cell.n, cell.message_bytes), (n, m));
                print!("{:>11.4}s", cell.mean_secs);
            }
            println!();
        }
    }
    println!(
        "\nreading guide: Bruck wins at small sizes (fewer start-ups), the \
         direct algorithms win at large sizes (no forwarding); contention \
         compresses the direct algorithms' advantage on Ethernet."
    );
}
