//! Compares All-to-All algorithms under contention: the paper's Direct
//! Exchange (blocking rounds and the post-all variant) against Bruck,
//! pairwise exchange and a ring — on a contended Gigabit Ethernet fabric
//! and on the lossless Myrinet fabric.
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```
//!
//! The motivating observation of the paper's introduction: algorithms tuned
//! for message counts (Bruck) versus bandwidth (direct) trade places as
//! message size grows, and contention shifts the crossover.

use alltoall_contention::prelude::*;
use simmpi::harness::alltoall_times;

fn main() {
    let n = 16; // power of two so pairwise exchange is legal
    let algorithms = AllToAllAlgorithm::all();
    let sizes = [1024u64, 16 * 1024, 128 * 1024, 1024 * 1024];

    for preset in [ClusterPreset::gigabit_ethernet(), ClusterPreset::myrinet()] {
        println!("\n== {} ({} ranks) ==", preset.name, n);
        print!("{:>10}", "msg bytes");
        for algo in &algorithms {
            print!("{:>12}", algo.name());
        }
        println!();
        for &m in &sizes {
            print!("{:>10}", m);
            for algo in &algorithms {
                let mut world = preset.build_world(n, 42);
                let times = alltoall_times(&mut world, *algo, m, 1, 2);
                let mean = times.iter().sum::<f64>() / times.len() as f64;
                print!("{:>11.4}s", mean);
            }
            println!();
        }
    }
    println!(
        "\nreading guide: Bruck wins at small sizes (fewer start-ups), the \
         direct algorithms win at large sizes (no forwarding); contention \
         compresses the direct algorithms' advantage on Ethernet."
    );
}
