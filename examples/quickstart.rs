//! Quickstart: the paper's §8 procedure through the `Session` facade —
//! describe a scenario in code, calibrate a contention signature on the
//! simulated Gigabit Ethernet cluster, and score the prediction against
//! fresh simulated measurements, streaming progress as cells finish.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! End to end:
//! 1. build a `ScenarioSpec` with the fluent `ScenarioBuilder`;
//! 2. calibrate Hockney α/β and the signature (γ, δ, M) on the scenario's
//!    own fabric (the `Session` memoizes both in its instance-owned cache);
//! 3. run the sweep with the signature predictor behind the error column,
//!    watching `RunEvent`s arrive live;
//! 4. render the versioned report as human-readable text.

use alltoall_contention::prelude::*;

fn main() {
    // 1. The scenario, in code — no TOML required (`spec.to_toml_string()`
    //    would print the equivalent document).
    let spec = ScenarioBuilder::new("quickstart-gigabit")
        .description("uniform direct exchange on the paper's GdX cluster")
        .preset("gigabit-ethernet")
        .uniform("direct")
        .nodes([6, 8])
        .message_bytes([128 * 1024, 512 * 1024])
        .reps(1)
        .build()
        .expect("valid scenario");

    // 2. A session owns workers, seed, predictor and the calibration
    //    cache; the signature fit below is reused by the run.
    let session = Session::builder()
        .workers(2)
        .base_seed(42)
        .model(ModelKind::Signature)
        .build()
        .expect("session builds");

    let hockney = session.calibrate_hockney(&spec).expect("hockney fit");
    println!(
        "hockney: alpha = {:.1} us, beta = {:.3} ns/B ({:.1} MB/s)",
        hockney.alpha_secs * 1e6,
        hockney.beta_secs_per_byte * 1e9,
        hockney.bandwidth_bytes_per_sec() / 1e6
    );
    let sig = session.calibrate_signature(&spec).expect("signature fit");
    println!(
        "signature: gamma = {:.3}, delta = {:.3} ms, M = {:?} (R^2 = {:.4}, fitted at n'={})",
        sig.gamma,
        sig.delta_secs * 1e3,
        sig.cutoff_bytes,
        sig.fit_r_squared,
        sig.sample_n
    );

    // 3. Stream the sweep: cells arrive in completion order, the report
    //    stays byte-deterministic regardless.
    println!(
        "\nrunning {} cells...",
        spec.sweep.nodes.len() * spec.sweep.message_bytes.len()
    );
    let report = session
        .run_with(&spec, &mut |event: RunEvent<'_>| {
            if let RunEvent::CellFinished {
                cell,
                completed,
                total,
                ..
            } = event
            {
                println!(
                    "  [{completed}/{total}] n={:>2} m={:>7}: measured {:.4}s vs predicted {:.4}s ({:+.1}%)",
                    cell.n, cell.message_bytes, cell.mean_secs, cell.model_secs, cell.error_percent
                );
            }
        })
        .expect("sweep runs");

    // 4. One render path serves text, CSV and JSON.
    println!("\n{}", report.render(ReportFormat::Text));
    println!(
        "(re-render with ReportFormat::Csv / ReportFormat::Json, or `ctnsim run --format json`)"
    );
}
