//! Quickstart: calibrate a contention signature on the simulated Gigabit
//! Ethernet cluster and predict `MPI_Alltoall` completion times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's §8 procedure end to end:
//! 1. measure Hockney α/β with a ping-pong;
//! 2. measure the All-to-All at one sample node count across message sizes;
//! 3. fit the contention signature (γ, δ, M);
//! 4. predict other (n, m) combinations and compare against fresh
//!    measurements.

use alltoall_contention::prelude::*;

fn main() {
    let preset = ClusterPreset::gigabit_ethernet();
    let sample_n = 16; // keep the quickstart quick; the paper uses 40
    let sizes = [
        64 * 1024u64,
        128 * 1024,
        256 * 1024,
        512 * 1024,
        1024 * 1024,
    ];

    println!("calibrating on {} at n'={sample_n}...", preset.name);
    let report = calibrate_report(&preset, sample_n, &sizes, 42).expect("calibration");
    let cal = report.calibration;
    println!(
        "hockney: alpha = {:.1} us, beta = {:.3} ns/B ({:.1} MB/s)",
        cal.hockney.alpha_secs * 1e6,
        cal.hockney.beta_secs_per_byte * 1e9,
        cal.hockney.bandwidth_bytes_per_sec() / 1e6
    );
    println!(
        "signature: gamma = {:.3}, delta = {:.3} ms, M = {:?} (R^2 = {:.4})",
        cal.signature.gamma,
        cal.signature.delta_secs * 1e3,
        cal.signature.cutoff_bytes,
        cal.signature.fit_r_squared
    );

    // Predict at a node count we did NOT calibrate on, then verify.
    let n = 24;
    let m = 512 * 1024;
    let predicted = cal.signature.predict(n, m);
    println!("\npredicting n={n}, m={m}: {predicted:.3} s");
    println!(
        "(lower bound would claim {:.3} s)",
        cal.hockney.alltoall_lower_bound(n, m)
    );

    let cfg = SweepConfig {
        seed: 7,
        ..SweepConfig::default()
    };
    let measured = contention_lab::runner::measure_alltoall_point(&preset, n, m, &cfg);
    println!(
        "measured: {measured:.3} s — prediction error {:+.1}%",
        estimation_error_percent(measured, predicted)
    );
}
